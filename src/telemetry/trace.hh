/**
 * @file
 * Request tracing: a span abstraction (begin/end, parent links) with a
 * thread-safe ring-buffer sink and a Chrome trace_event JSON exporter
 * for flame-chart viewing (chrome://tracing, Perfetto).
 *
 * Tracing is off by default and zero-cost-when-disabled: a ScopedSpan
 * constructor checks one relaxed atomic and, when tracing is off, reads
 * no clock and touches no shared state. This is the property the
 * bench_inference_hotpath telemetry section enforces.
 *
 * Wall-clock policy: the steady_clock reads live HERE, inside the
 * telemetry layer, and feed only observability data — never model
 * outputs. Code under src/rna/ must not read clocks directly
 * (tools/lint_determinism.py `wall-clock` rule); it traces through the
 * RAPIDNN_TELEMETRY_SPAN guard macros below, which keep the clock
 * access behind this file's API.
 */

#ifndef RAPIDNN_TELEMETRY_TRACE_HH
#define RAPIDNN_TELEMETRY_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <ostream>
#include <string_view>
#include <vector>

#include "common/sync.hh"
#include "telemetry/metrics.hh"

namespace rapidnn::telemetry {

/** One completed span in the ring sink. */
struct SpanRecord
{
    /** Span name, truncated; fixed storage keeps the sink allocation-
     *  free once constructed. */
    char name[24] = {};
    uint64_t id = 0;
    uint64_t parent = 0;   //!< 0 = no parent
    uint64_t startNs = 0;  //!< steady time since tracer epoch
    uint64_t durNs = 0;
    uint32_t tid = 0;      //!< small sequential thread id
    int64_t arg = -1;      //!< optional numeric payload (-1 = none)

    void
    setName(std::string_view n)
    {
        const size_t len = std::min(n.size(), sizeof(name) - 1);
        std::memcpy(name, n.data(), len);
        name[len] = '\0';
    }
};

/**
 * The span sink: a fixed-capacity ring buffer of completed spans. When
 * the ring wraps, the oldest spans are overwritten — tracing a long run
 * keeps the most recent window, which is what a flame chart of "what is
 * the server doing right now" wants.
 */
class Tracer
{
  public:
    explicit Tracer(size_t capacity = kDefaultCapacity);

    /** The process-wide tracer used by the guard macros. */
    static Tracer &global();

    void
    setEnabled(bool on)
    {
        _enabled.store(on, std::memory_order_relaxed);
    }

    bool
    enabled() const
    {
        return _enabled.load(std::memory_order_relaxed);
    }

    /** Nanoseconds on the steady clock since the tracer epoch. */
    static uint64_t nowNs();

    /** Convert a steady_clock time_point to tracer-epoch nanoseconds. */
    static uint64_t toNs(std::chrono::steady_clock::time_point t);

    /** Fresh process-unique span id (never 0). */
    uint64_t
    nextId()
    {
        return _nextId.fetch_add(1, std::memory_order_relaxed);
    }

    /**
     * Record a completed span with explicit timestamps — the path for
     * cross-thread spans (e.g. queue wait measured between producer
     * and worker) and for testing with synthetic times.
     */
    void record(std::string_view name, uint64_t startNs,
                uint64_t endNs, uint64_t id, uint64_t parent,
                int64_t arg = -1) RAPIDNN_EXCLUDES(_mutex);

    /** Spans currently buffered, oldest first. */
    std::vector<SpanRecord> snapshot() const RAPIDNN_EXCLUDES(_mutex);

    /** Total spans ever recorded (including overwritten ones). */
    uint64_t recorded() const RAPIDNN_EXCLUDES(_mutex);

    /** Drop all buffered spans (ids keep advancing). */
    void clear() RAPIDNN_EXCLUDES(_mutex);

    size_t capacity() const { return _capacity; }

    /**
     * Current thread's innermost live span id (0 outside any span).
     * ScopedSpan maintains this so nested spans parent automatically,
     * across call boundaries (e.g. engine request span -> chip layer
     * spans).
     */
    static uint64_t currentSpan();

  private:
    friend class ScopedSpan;
    static constexpr size_t kDefaultCapacity = 8192;

    static void setCurrentSpan(uint64_t id);

    std::atomic<bool> _enabled{false};
    std::atomic<uint64_t> _nextId{1};

    /** Ring size, fixed at construction; readable without _mutex. */
    const size_t _capacity;

    mutable Mutex _mutex;
    std::vector<SpanRecord> _ring RAPIDNN_GUARDED_BY(_mutex);
    uint64_t _total RAPIDNN_GUARDED_BY(_mutex) = 0;
};

/**
 * RAII span: starts at construction, records into the sink at scope
 * exit. When the tracer is disabled at construction the object is
 * inert (no clock read, no id, no sink access). Optionally observes
 * the measured duration (in seconds) into a registry histogram, so one
 * timing guard feeds both the flame chart and the scrape surface.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(Tracer &tracer, std::string_view name,
                        int64_t arg = -1, uint64_t parentOverride = 0,
                        Histogram *durationHistogram = nullptr);
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** This span's id (0 when tracing was disabled at construction). */
    uint64_t id() const { return _id; }

  private:
    Tracer *_tracer = nullptr;  //!< null = disabled at construction
    Histogram *_histogram = nullptr;
    char _name[24] = {};
    uint64_t _id = 0;
    uint64_t _parent = 0;
    uint64_t _prevCurrent = 0;
    uint64_t _startNs = 0;
    int64_t _arg = -1;
};

/**
 * Export spans as Chrome trace_event JSON (load via chrome://tracing
 * or https://ui.perfetto.dev). Complete ("ph":"X") events carry the
 * span id, parent id and numeric arg in "args".
 */
void writeChromeTrace(std::ostream &out,
                      const std::vector<SpanRecord> &spans);

/** writeChromeTrace over the global tracer's current buffer. */
void writeChromeTrace(std::ostream &out);

} // namespace rapidnn::telemetry

#define RAPIDNN_TELEMETRY_CONCAT2(a, b) a##b
#define RAPIDNN_TELEMETRY_CONCAT(a, b) RAPIDNN_TELEMETRY_CONCAT2(a, b)

/**
 * Telemetry guard macros — the sanctioned way for model/simulator code
 * (notably src/rna/) to measure wall time. The clock reads stay inside
 * telemetry::ScopedSpan; when tracing is disabled the expansion costs
 * one relaxed atomic load.
 *
 * RAPIDNN_TELEMETRY_SPAN(name[, arg]): span for the enclosing scope.
 * RAPIDNN_TELEMETRY_STAGE(name, hist): scope span that also observes
 * its duration into a registry histogram (may be null).
 */
#define RAPIDNN_TELEMETRY_SPAN(...)                                  \
    rapidnn::telemetry::ScopedSpan RAPIDNN_TELEMETRY_CONCAT(         \
        rapidnnTelemetrySpan_, __COUNTER__)(                         \
        rapidnn::telemetry::Tracer::global(), __VA_ARGS__)

#define RAPIDNN_TELEMETRY_STAGE(name, hist)                          \
    rapidnn::telemetry::ScopedSpan RAPIDNN_TELEMETRY_CONCAT(         \
        rapidnnTelemetrySpan_, __COUNTER__)(                         \
        rapidnn::telemetry::Tracer::global(), name, -1, 0, hist)

#endif // RAPIDNN_TELEMETRY_TRACE_HH
