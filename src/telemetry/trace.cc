#include "telemetry/trace.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace rapidnn::telemetry {

namespace {

/** Innermost live span of this thread (parenting for nested spans). */
thread_local uint64_t tCurrentSpan = 0;

/** Small sequential thread ids keep trace output readable and stable
 *  within a run (native handles are opaque and huge). */
uint32_t
threadTraceId()
{
    static std::atomic<uint32_t> next{1};
    thread_local const uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

std::chrono::steady_clock::time_point
tracerEpoch()
{
    static const std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
    return epoch;
}

/** Escape a span name for a JSON string literal (names are short and
 *  ASCII in practice; control characters hex-escape defensively). */
void
appendJsonEscaped(std::string &out, std::string_view s)
{
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned char>(c));
            out += buf;
        } else {
            out += c;
        }
    }
}

} // namespace

Tracer::Tracer(size_t capacity)
    : _capacity(std::max<size_t>(capacity, 1)), _ring(_capacity)
{
}

Tracer &
Tracer::global()
{
    static Tracer tracer;
    return tracer;
}

uint64_t
Tracer::nowNs()
{
    return toNs(std::chrono::steady_clock::now());
}

uint64_t
Tracer::toNs(std::chrono::steady_clock::time_point t)
{
    const auto since = t - tracerEpoch();
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(since)
            .count();
    return ns > 0 ? static_cast<uint64_t>(ns) : 0;
}

uint64_t
Tracer::currentSpan()
{
    return tCurrentSpan;
}

void
Tracer::setCurrentSpan(uint64_t id)
{
    tCurrentSpan = id;
}

void
Tracer::record(std::string_view name, uint64_t startNs,
               uint64_t endNs, uint64_t id, uint64_t parent,
               int64_t arg)
{
    SpanRecord record;
    record.setName(name);
    record.id = id;
    record.parent = parent;
    record.startNs = startNs;
    record.durNs = endNs > startNs ? endNs - startNs : 0;
    record.tid = threadTraceId();
    record.arg = arg;

    MutexLock lock(_mutex);
    _ring[_total % _ring.size()] = record;
    ++_total;
}

std::vector<SpanRecord>
Tracer::snapshot() const
{
    MutexLock lock(_mutex);
    std::vector<SpanRecord> out;
    const size_t n = std::min<uint64_t>(_total, _ring.size());
    out.reserve(n);
    // Oldest first: when wrapped, the oldest live slot is _total % cap.
    const size_t first = _total >= _ring.size()
        ? _total % _ring.size() : 0;
    for (size_t i = 0; i < n; ++i)
        out.push_back(_ring[(first + i) % _ring.size()]);
    return out;
}

uint64_t
Tracer::recorded() const
{
    MutexLock lock(_mutex);
    return _total;
}

void
Tracer::clear()
{
    MutexLock lock(_mutex);
    _total = 0;
}

ScopedSpan::ScopedSpan(Tracer &tracer, std::string_view name,
                       int64_t arg, uint64_t parentOverride,
                       Histogram *durationHistogram)
{
    if (!tracer.enabled())
        return;  // inert: no clock read, no shared state
    _tracer = &tracer;
    _histogram = durationHistogram;
    const size_t len = std::min(name.size(), sizeof(_name) - 1);
    std::memcpy(_name, name.data(), len);
    _name[len] = '\0';
    _id = tracer.nextId();
    _parent =
        parentOverride != 0 ? parentOverride : Tracer::currentSpan();
    _prevCurrent = Tracer::currentSpan();
    Tracer::setCurrentSpan(_id);
    _arg = arg;
    _startNs = Tracer::nowNs();
}

ScopedSpan::~ScopedSpan()
{
    if (_tracer == nullptr)
        return;
    const uint64_t endNs = Tracer::nowNs();
    Tracer::setCurrentSpan(_prevCurrent);
    _tracer->record(_name, _startNs, endNs, _id, _parent, _arg);
    if (_histogram != nullptr)
        _histogram->observe(
            static_cast<double>(endNs - _startNs) * 1e-9);
}

void
writeChromeTrace(std::ostream &out,
                 const std::vector<SpanRecord> &spans)
{
    out << "{\"traceEvents\":[";
    bool first = true;
    std::string line;
    for (const SpanRecord &span : spans) {
        line.clear();
        if (!first)
            line += ",";
        first = false;
        line += "\n{\"name\":\"";
        appendJsonEscaped(line, span.name);
        line += "\",\"cat\":\"rapidnn\",\"ph\":\"X\",\"pid\":1";
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      ",\"tid\":%" PRIu32
                      ",\"ts\":%.3f,\"dur\":%.3f",
                      span.tid,
                      static_cast<double>(span.startNs) / 1000.0,
                      static_cast<double>(span.durNs) / 1000.0);
        line += buf;
        std::snprintf(buf, sizeof(buf),
                      ",\"args\":{\"id\":%" PRIu64
                      ",\"parent\":%" PRIu64,
                      span.id, span.parent);
        line += buf;
        if (span.arg >= 0) {
            std::snprintf(buf, sizeof(buf), ",\"arg\":%" PRId64,
                          span.arg);
            line += buf;
        }
        line += "}}";
        out << line;
    }
    out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void
writeChromeTrace(std::ostream &out)
{
    writeChromeTrace(out, Tracer::global().snapshot());
}

} // namespace rapidnn::telemetry
