/**
 * @file
 * Lock-cheap metrics registry: named counters, gauges, and fixed-bucket
 * histograms with per-thread sharded atomics, plus a consistent
 * snapshot API the exposition layer (prometheus.hh, metrics_server.hh)
 * renders from.
 *
 * Write paths are designed for the serving hot path: a counter add or
 * histogram observe is one relaxed atomic RMW on a cache-line-private
 * shard picked per thread, so concurrent workers never bounce a line.
 * Reads (snapshot) sum the shards; counters and bucket counts are
 * monotone and exact once writers quiesce, and a mid-flight snapshot is
 * weakly consistent: every datum read is itself atomic, histogram
 * `count` is derived from the same bucket reads (so count == sum of
 * buckets always holds), but concurrently-arriving observations may be
 * visible in one metric and not yet in another.
 *
 * Determinism note: metric values are host-side observability data
 * (timings, queue depths). They never feed back into model outputs, so
 * the bitwise-reproducibility contract (DESIGN.md) is untouched;
 * histogram `sum` accumulates floating-point observations in arrival
 * order and is therefore not itself bitwise reproducible across runs.
 */

#ifndef RAPIDNN_TELEMETRY_METRICS_HH
#define RAPIDNN_TELEMETRY_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.hh"

namespace rapidnn::telemetry {

/** Write shards per metric; each is its own cache line. */
constexpr size_t kMetricShards = 16;

/** Stable per-thread shard index in [0, kMetricShards). */
size_t threadShard();

/** Monotone counter with per-thread sharded atomics. */
class Counter
{
  public:
    void
    add(uint64_t n = 1)
    {
        _shards[threadShard()].v.fetch_add(n,
                                           std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        uint64_t total = 0;
        for (const Shard &shard : _shards)
            total += shard.v.load(std::memory_order_relaxed);
        return total;
    }

  private:
    struct alignas(64) Shard
    {
        std::atomic<uint64_t> v{0};
    };
    std::array<Shard, kMetricShards> _shards;
};

/** Instantaneous integer value (queue depth, busy lanes). */
class Gauge
{
  public:
    void set(int64_t v) { _v.store(v, std::memory_order_relaxed); }
    void add(int64_t d) { _v.fetch_add(d, std::memory_order_relaxed); }
    int64_t value() const { return _v.load(std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> _v{0};
};

/**
 * Fixed-bucket histogram. Bucket semantics follow Prometheus: bucket i
 * counts observations x with x <= bounds[i] (and x > bounds[i-1]); one
 * implicit +Inf bucket catches the overflow. Bounds are fixed at
 * registration so merging and rendering never rebucket.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> bounds);

    void observe(double x);

    const std::vector<double> &bounds() const { return _bounds; }

    /** Per-bucket counts (bounds().size() + 1 entries, last = +Inf). */
    std::vector<uint64_t> bucketCounts() const;

    uint64_t count() const;
    double sum() const;

  private:
    struct alignas(64) Shard
    {
        std::vector<std::atomic<uint64_t>> buckets;
        std::atomic<double> sum{0.0};
    };

    std::vector<double> _bounds;
    std::array<Shard, kMetricShards> _shards;
};

enum class MetricKind
{
    Counter,
    Gauge,
    Histogram,
};

/** One metric series captured by Registry::snapshot(). */
struct MetricSnapshot
{
    std::string name;    //!< family name (Prometheus conventions)
    std::string labels;  //!< rendered inside {}, e.g. stage="encoding"
    std::string help;
    MetricKind kind = MetricKind::Counter;

    double value = 0.0;            //!< counter / gauge
    std::vector<double> bounds;    //!< histogram bucket upper bounds
    std::vector<uint64_t> counts;  //!< per bucket, last = +Inf overflow
    double sum = 0.0;              //!< histogram sum of observations
    uint64_t count = 0;            //!< histogram observation count
};

/**
 * Interpolated q-quantile estimate from a histogram snapshot: finds the
 * bucket holding the target rank and interpolates linearly inside it
 * (rather than truncating to a bucket edge). The +Inf bucket clamps to
 * the largest finite bound. Returns 0 for an empty histogram.
 */
double histogramQuantile(const MetricSnapshot &h, double q);

/**
 * The named-metric registry. Registration is idempotent: asking for an
 * existing (name, labels) series returns the same object (the kind and
 * histogram bounds must match). Metric objects live as long as the
 * registry and their addresses are stable, so hot paths hold plain
 * references and never touch the registry lock again.
 *
 * Callback metrics sample a value at snapshot time (queue depth, pool
 * utilization); they are the only removable entries, via the returned
 * id or a ScopedCallback.
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** The process-wide registry behind the scrape endpoint. */
    static Registry &global();

    Counter &counter(const std::string &name, const std::string &help,
                     const std::string &labels = "")
        RAPIDNN_EXCLUDES(_mutex);
    Gauge &gauge(const std::string &name, const std::string &help,
                 const std::string &labels = "")
        RAPIDNN_EXCLUDES(_mutex);
    Histogram &histogram(const std::string &name,
                         const std::string &help,
                         std::vector<double> bounds,
                         const std::string &labels = "")
        RAPIDNN_EXCLUDES(_mutex);

    /**
     * Register a sampled metric: fn() is evaluated under the registry
     * lock at every snapshot. Re-registering the same (name, labels)
     * replaces the previous callback. Returns an id for removeCallback.
     */
    uint64_t addCallback(const std::string &name,
                         const std::string &help, MetricKind kind,
                         std::function<double()> fn,
                         const std::string &labels = "")
        RAPIDNN_EXCLUDES(_mutex);

    /** Remove a callback by id; ignores ids already replaced/removed. */
    void removeCallback(uint64_t id) RAPIDNN_EXCLUDES(_mutex);

    /** All series, ordered by (name, labels) for deterministic output. */
    std::vector<MetricSnapshot> snapshot() const
        RAPIDNN_EXCLUDES(_mutex);

  private:
    struct Entry
    {
        std::string help;
        MetricKind kind = MetricKind::Counter;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
        std::function<double()> callback;
        uint64_t callbackId = 0;
    };

    using Key = std::pair<std::string, std::string>;

    Entry &entryFor(const Key &key, MetricKind kind,
                    const std::string &help) RAPIDNN_REQUIRES(_mutex);

    mutable Mutex _mutex;
    std::map<Key, Entry> _entries RAPIDNN_GUARDED_BY(_mutex);
    uint64_t _nextCallbackId RAPIDNN_GUARDED_BY(_mutex) = 1;
};

/** RAII registration for a callback metric (unregisters on scope exit). */
class ScopedCallback
{
  public:
    ScopedCallback() = default;
    ScopedCallback(Registry &registry, const std::string &name,
                   const std::string &help, MetricKind kind,
                   std::function<double()> fn,
                   const std::string &labels = "")
        : _registry(&registry),
          _id(registry.addCallback(name, help, kind, std::move(fn),
                                   labels))
    {
    }

    ~ScopedCallback() { reset(); }

    ScopedCallback(ScopedCallback &&o) noexcept
        : _registry(o._registry), _id(o._id)
    {
        o._registry = nullptr;
        o._id = 0;
    }

    ScopedCallback &
    operator=(ScopedCallback &&o) noexcept
    {
        if (this != &o) {
            reset();
            _registry = o._registry;
            _id = o._id;
            o._registry = nullptr;
            o._id = 0;
        }
        return *this;
    }

    ScopedCallback(const ScopedCallback &) = delete;
    ScopedCallback &operator=(const ScopedCallback &) = delete;

    void
    reset()
    {
        if (_registry != nullptr)
            _registry->removeCallback(_id);
        _registry = nullptr;
        _id = 0;
    }

  private:
    Registry *_registry = nullptr;
    uint64_t _id = 0;
};

} // namespace rapidnn::telemetry

#endif // RAPIDNN_TELEMETRY_METRICS_HH
