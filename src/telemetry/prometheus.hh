/**
 * @file
 * Prometheus text-format (version 0.0.4) rendering of a metrics
 * snapshot: `# HELP` / `# TYPE` headers per family, `{label}` series,
 * cumulative `_bucket{le=...}` lines plus `_sum` / `_count` for
 * histograms. Output is deterministic for a given snapshot (series are
 * ordered by name then labels, and number formatting is fixed), which
 * the golden-file test pins.
 */

#ifndef RAPIDNN_TELEMETRY_PROMETHEUS_HH
#define RAPIDNN_TELEMETRY_PROMETHEUS_HH

#include <string>
#include <vector>

#include "telemetry/metrics.hh"

namespace rapidnn::telemetry {

/** Render one snapshot as Prometheus exposition text. */
std::string renderPrometheus(
    const std::vector<MetricSnapshot> &snapshot);

/** Snapshot + render a registry in one call. */
std::string renderPrometheus(const Registry &registry);

} // namespace rapidnn::telemetry

#endif // RAPIDNN_TELEMETRY_PROMETHEUS_HH
