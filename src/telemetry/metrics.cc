#include "telemetry/metrics.hh"

#include <algorithm>
#include <cmath>

#include "common/check.hh"

namespace rapidnn::telemetry {

size_t
threadShard()
{
    static std::atomic<size_t> next{0};
    // Round-robin assignment spreads threads evenly over the shards;
    // thread_local makes the pick free after the first call.
    thread_local const size_t shard =
        next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
    return shard;
}

namespace {

/** Relaxed add for atomic<double> (portable CAS loop). */
void
atomicAdd(std::atomic<double> &a, double delta)
{
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + delta,
                                    std::memory_order_relaxed)) {
    }
}

} // namespace

Histogram::Histogram(std::vector<double> bounds)
    : _bounds(std::move(bounds))
{
    RAPIDNN_ASSERT(!_bounds.empty(), "histogram needs bucket bounds");
    RAPIDNN_ASSERT(
        std::is_sorted(_bounds.begin(), _bounds.end()) &&
            std::adjacent_find(_bounds.begin(), _bounds.end())
                == _bounds.end(),
        "histogram bounds must be strictly ascending");
    for (Shard &shard : _shards)
        shard.buckets =
            std::vector<std::atomic<uint64_t>>(_bounds.size() + 1);
}

void
Histogram::observe(double x)
{
    // First bound >= x; equality lands in that bucket (le semantics).
    const size_t bucket = static_cast<size_t>(
        std::lower_bound(_bounds.begin(), _bounds.end(), x)
        - _bounds.begin());
    Shard &shard = _shards[threadShard()];
    shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
    atomicAdd(shard.sum, x);
}

std::vector<uint64_t>
Histogram::bucketCounts() const
{
    std::vector<uint64_t> counts(_bounds.size() + 1, 0);
    for (const Shard &shard : _shards)
        for (size_t i = 0; i < counts.size(); ++i)
            counts[i] +=
                shard.buckets[i].load(std::memory_order_relaxed);
    return counts;
}

uint64_t
Histogram::count() const
{
    uint64_t total = 0;
    for (uint64_t c : bucketCounts())
        total += c;
    return total;
}

double
Histogram::sum() const
{
    double total = 0.0;
    for (const Shard &shard : _shards)
        total += shard.sum.load(std::memory_order_relaxed);
    return total;
}

double
histogramQuantile(const MetricSnapshot &h, double q)
{
    uint64_t total = 0;
    for (uint64_t c : h.counts)
        total += c;
    if (total == 0 || h.bounds.empty())
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double rank = q * static_cast<double>(total);

    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.counts.size(); ++i) {
        const uint64_t prev = cumulative;
        cumulative += h.counts[i];
        if (static_cast<double>(cumulative) < rank)
            continue;
        // The +Inf bucket has no upper edge to interpolate toward;
        // clamp to the largest finite bound.
        if (i >= h.bounds.size())
            return h.bounds.back();
        const double lo = i == 0 ? 0.0 : h.bounds[i - 1];
        const double hi = h.bounds[i];
        if (h.counts[i] == 0)
            return hi;
        const double frac = (rank - static_cast<double>(prev))
                          / static_cast<double>(h.counts[i]);
        return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    return h.bounds.back();
}

Registry &
Registry::global()
{
    static Registry registry;
    return registry;
}

Registry::Entry &
Registry::entryFor(const Key &key, MetricKind kind,
                   const std::string &help)
{
    auto [it, inserted] = _entries.try_emplace(key);
    Entry &entry = it->second;
    if (inserted) {
        entry.help = help;
        entry.kind = kind;
    } else {
        RAPIDNN_ASSERT(entry.kind == kind,
                       "metric re-registered with a different kind");
    }
    return entry;
}

Counter &
Registry::counter(const std::string &name, const std::string &help,
                  const std::string &labels)
{
    MutexLock lock(_mutex);
    Entry &entry = entryFor({name, labels}, MetricKind::Counter, help);
    if (entry.counter == nullptr)
        entry.counter = std::make_unique<Counter>();
    return *entry.counter;
}

Gauge &
Registry::gauge(const std::string &name, const std::string &help,
                const std::string &labels)
{
    MutexLock lock(_mutex);
    Entry &entry = entryFor({name, labels}, MetricKind::Gauge, help);
    if (entry.gauge == nullptr)
        entry.gauge = std::make_unique<Gauge>();
    return *entry.gauge;
}

Histogram &
Registry::histogram(const std::string &name, const std::string &help,
                    std::vector<double> bounds,
                    const std::string &labels)
{
    MutexLock lock(_mutex);
    Entry &entry =
        entryFor({name, labels}, MetricKind::Histogram, help);
    if (entry.histogram == nullptr) {
        entry.histogram =
            std::make_unique<Histogram>(std::move(bounds));
    } else {
        RAPIDNN_ASSERT(entry.histogram->bounds() == bounds,
                       "histogram re-registered with other bounds");
    }
    return *entry.histogram;
}

uint64_t
Registry::addCallback(const std::string &name, const std::string &help,
                      MetricKind kind, std::function<double()> fn,
                      const std::string &labels)
{
    RAPIDNN_ASSERT(kind != MetricKind::Histogram,
                   "callback metrics are counters or gauges");
    MutexLock lock(_mutex);
    Entry &entry = entryFor({name, labels}, kind, help);
    entry.callback = std::move(fn);
    entry.callbackId = _nextCallbackId++;
    return entry.callbackId;
}

void
Registry::removeCallback(uint64_t id)
{
    if (id == 0)
        return;
    MutexLock lock(_mutex);
    for (auto it = _entries.begin(); it != _entries.end(); ++it) {
        if (it->second.callbackId == id) {
            _entries.erase(it);
            return;
        }
    }
}

std::vector<MetricSnapshot>
Registry::snapshot() const
{
    MutexLock lock(_mutex);
    std::vector<MetricSnapshot> out;
    out.reserve(_entries.size());
    for (const auto &[key, entry] : _entries) {
        MetricSnapshot snap;
        snap.name = key.first;
        snap.labels = key.second;
        snap.help = entry.help;
        snap.kind = entry.kind;
        if (entry.callback) {
            snap.value = entry.callback();
        } else if (entry.counter != nullptr) {
            snap.value = static_cast<double>(entry.counter->value());
        } else if (entry.gauge != nullptr) {
            snap.value = static_cast<double>(entry.gauge->value());
        } else if (entry.histogram != nullptr) {
            snap.bounds = entry.histogram->bounds();
            snap.counts = entry.histogram->bucketCounts();
            // Derive count from the same bucket reads so
            // count == sum(counts) holds in every snapshot.
            snap.count = 0;
            for (uint64_t c : snap.counts)
                snap.count += c;
            snap.sum = entry.histogram->sum();
        }
        out.push_back(std::move(snap));
    }
    return out;
}

} // namespace rapidnn::telemetry
