#include "telemetry/prometheus.hh"

#include <cmath>
#include <cstdio>

namespace rapidnn::telemetry {

namespace {

/**
 * Deterministic value formatting: integral values print without a
 * fraction (counters, bucket counts), everything else as shortest
 * round-trippable %.10g.
 */
std::string
formatValue(double v)
{
    char buf[64];
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    if (v == std::floor(v) && std::fabs(v) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

const char *
kindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter: return "counter";
      case MetricKind::Gauge: return "gauge";
      case MetricKind::Histogram: return "histogram";
    }
    return "untyped";
}

/** `name{labels}` or bare `name`; extra appends after the labels. */
void
appendSeries(std::string &out, const std::string &name,
             const std::string &labels, const std::string &extra)
{
    out += name;
    if (!labels.empty() || !extra.empty()) {
        out += '{';
        out += labels;
        if (!labels.empty() && !extra.empty())
            out += ',';
        out += extra;
        out += '}';
    }
}

} // namespace

std::string
renderPrometheus(const std::vector<MetricSnapshot> &snapshot)
{
    std::string out;
    std::string lastFamily;
    for (const MetricSnapshot &m : snapshot) {
        if (m.name != lastFamily) {
            if (!m.help.empty()) {
                out += "# HELP " + m.name + " " + m.help + "\n";
            }
            out += "# TYPE " + m.name + " ";
            out += kindName(m.kind);
            out += "\n";
            lastFamily = m.name;
        }
        if (m.kind == MetricKind::Histogram) {
            uint64_t cumulative = 0;
            for (size_t i = 0; i < m.counts.size(); ++i) {
                cumulative += m.counts[i];
                const std::string le = i < m.bounds.size()
                    ? formatValue(m.bounds[i]) : "+Inf";
                appendSeries(out, m.name + "_bucket", m.labels,
                             "le=\"" + le + "\"");
                out += ' ';
                out += formatValue(static_cast<double>(cumulative));
                out += '\n';
            }
            appendSeries(out, m.name + "_sum", m.labels, "");
            out += ' ';
            out += formatValue(m.sum);
            out += '\n';
            appendSeries(out, m.name + "_count", m.labels, "");
            out += ' ';
            out += formatValue(static_cast<double>(m.count));
            out += '\n';
        } else {
            appendSeries(out, m.name, m.labels, "");
            out += ' ';
            out += formatValue(m.value);
            out += '\n';
        }
    }
    return out;
}

std::string
renderPrometheus(const Registry &registry)
{
    return renderPrometheus(registry.snapshot());
}

} // namespace rapidnn::telemetry
