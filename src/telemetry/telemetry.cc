#include "telemetry/telemetry.hh"

#include <string>

#include "common/task_pool.hh"

namespace rapidnn::telemetry {

std::vector<double>
latencyBucketsSeconds()
{
    return {25e-6, 50e-6, 100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3,
            5e-3,  1e-2,  2.5e-2, 5e-2,   1e-1,   2.5e-1, 1.0};
}

std::vector<double>
stageBucketsSeconds()
{
    return {1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4,
            2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 1e-1};
}

std::vector<double>
batchSizeBuckets()
{
    return {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0};
}

std::vector<double>
utilizationBuckets()
{
    return {0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0};
}

void
registerTaskPoolMetrics(Registry &registry)
{
    // The shared pool has static storage duration, so callbacks that
    // capture it can never dangle within the process lifetime.
    TaskPool &pool = TaskPool::shared();
    const size_t lanes = pool.lanes();
    for (size_t i = 0; i < lanes; ++i) {
        const std::string lane = "lane=\"" + std::to_string(i) + "\"";
        registry.addCallback(
            "rapidnn_taskpool_tasks_total",
            "Shards executed per task-pool lane slot (slot 0 = "
            "calling threads)",
            MetricKind::Counter,
            [&pool, i] {
                return static_cast<double>(
                    pool.laneCounters()[i].executed);
            },
            lane);
        registry.addCallback(
            "rapidnn_taskpool_steals_total",
            "Jobs a lane slot attached to (helper slots: jobs stolen "
            "from other threads; slot 0: parallel run() calls)",
            MetricKind::Counter,
            [&pool, i] {
                return static_cast<double>(
                    pool.laneCounters()[i].steals);
            },
            lane);
    }
    registry.addCallback(
        "rapidnn_taskpool_busy_helpers",
        "Helper threads currently executing shards",
        MetricKind::Gauge,
        [&pool] { return static_cast<double>(pool.busyHelpers()); });
    registry.addCallback(
        "rapidnn_taskpool_lanes",
        "Usable task-pool lanes (helpers + caller)",
        MetricKind::Gauge,
        [lanes] { return static_cast<double>(lanes); });
}

void
dumpAll(std::ostream &out)
{
    out << renderPrometheus(Registry::global());
}

} // namespace rapidnn::telemetry
