#include "telemetry/metrics_server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/logging.hh"

namespace rapidnn::telemetry {

namespace {

/** Write all of `data`, retrying short writes; false on error. */
bool
writeAll(int fd, const char *data, size_t len)
{
    size_t off = 0;
    while (off < len) {
        const ssize_t n = ::send(fd, data + off, len - off,
                                 MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        off += static_cast<size_t>(n);
    }
    return true;
}

} // namespace

MetricsServer::MetricsServer(uint16_t port, Renderer renderer)
    : _renderer(std::move(renderer))
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        warn("metrics endpoint disabled: socket() failed");
        return;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 8) != 0) {
        warn("metrics endpoint disabled: cannot bind 127.0.0.1:",
             port);
        ::close(fd);
        return;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len)
        != 0) {
        ::close(fd);
        return;
    }
    _fd = fd;
    _port = ntohs(addr.sin_port);
    _thread = std::thread([this] { serveLoop(); });
    inform("metrics endpoint listening on 127.0.0.1:", _port);
}

MetricsServer::~MetricsServer()
{
    _stop.store(true, std::memory_order_relaxed);
    if (_thread.joinable())
        _thread.join();
    if (_fd >= 0)
        ::close(_fd);
}

void
MetricsServer::serveLoop()
{
    for (;;) {
        pollfd pfd{_fd, POLLIN, 0};
        // Poll with a short timeout so shutdown is observed promptly
        // even when no scraper ever connects.
        const int ready = ::poll(&pfd, 1, 100);
        if (_stop.load(std::memory_order_relaxed))
            return;
        if (ready <= 0 || (pfd.revents & POLLIN) == 0)
            continue;
        const int client = ::accept(_fd, nullptr, nullptr);
        if (client < 0)
            continue;

        // Drain the request line; the endpoint answers every request
        // the same way, so parsing stops at "something arrived".
        char buf[1024];
        (void)::recv(client, buf, sizeof(buf), 0);

        const std::string body = _renderer ? _renderer() : "";
        std::string response =
            "HTTP/1.0 200 OK\r\n"
            "Content-Type: text/plain; version=0.0.4; "
            "charset=utf-8\r\n"
            "Content-Length: " + std::to_string(body.size()) +
            "\r\nConnection: close\r\n\r\n" + body;
        writeAll(client, response.data(), response.size());
        ::close(client);
    }
}

std::string
scrapeLocal(uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return "";
    }
    const char request[] = "GET /metrics HTTP/1.0\r\n\r\n";
    if (!writeAll(fd, request, sizeof(request) - 1)) {
        ::close(fd);
        return "";
    }
    std::string response;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        response.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    const size_t split = response.find("\r\n\r\n");
    return split == std::string::npos ? "" : response.substr(split + 4);
}

} // namespace rapidnn::telemetry
