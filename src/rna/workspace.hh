/**
 * @file
 * Reusable per-chip inference workspace.
 *
 * One Workspace is built at Chip::configure time and leased to each
 * infer() call, so the steady-state per-neuron hot loop performs zero
 * heap allocations: the counting scratch resets sparsely, the conv
 * gather buffers and recurrent state double-buffers are sized up front,
 * and conv im2col-style index plans are cached per input shape.
 * The busy flag lets concurrent infer() calls on one chip stay safe:
 * the loser of the exchange falls back to a private spare workspace.
 */

#ifndef RAPIDNN_RNA_WORKSPACE_HH
#define RAPIDNN_RNA_WORKSPACE_HH

#include <atomic>
#include <cstdint>
#include <vector>

#include "nvm/op_cost.hh"
#include "rna/accumulation.hh"

namespace rapidnn::rna {

/**
 * Per-phase cost breakdown of one neuron evaluation (Figure 13).
 * Lives here (rather than rna_block.hh, which includes this header)
 * because the workspace stores one per neuron for the deterministic
 * intra-op reduction.
 */
struct NeuronCost
{
    nvm::OpCost weightedAccum;
    nvm::OpCost activation;
    nvm::OpCost encoding;
    nvm::OpCost pooling;

    nvm::OpCost
    total() const
    {
        return weightedAccum + activation + encoding + pooling;
    }

    NeuronCost &
    operator+=(const NeuronCost &o)
    {
        weightedAccum += o.weightedAccum;
        activation += o.activation;
        encoding += o.encoding;
        pooling += o.pooling;
        return *this;
    }
};

/**
 * Cached im2col-style gather plan for one conv layer at one input
 * shape: flat index maps from each output position's receptive-field
 * window into the layer's per-channel weight codes and into the input
 * tensor, with same-padding boundary clipping folded in. Built on the
 * first infer (input H/W are unknown at configure) and reused while the
 * shape matches. Slot order mirrors the reference gather loops
 * (channel, then valid ky, then valid kx) so results stay identical.
 */
struct ConvGatherPlan
{
    size_t inC = 0;
    size_t inH = 0;
    size_t inW = 0;
    size_t outH = 0;
    size_t outW = 0;
    /** Prefix offsets into the index arrays: window for output
     *  position p spans slots [start[p], start[p + 1]). */
    std::vector<uint32_t> start;
    std::vector<uint32_t> weightIdx;  //!< slot -> per-channel weight code
    std::vector<uint32_t> inputIdx;   //!< slot -> input tensor code

    bool
    matches(size_t c, size_t h, size_t w) const
    {
        return c == inC && h == inH && w == inW;
    }
};

/**
 * Per-lane scratch for intra-op parallel shard execution: each task
 * pool lane gets a private counting scratch and conv gather buffers,
 * so shards never contend. Results cannot depend on which lane runs a
 * shard — the scratch is reset-to-zero state, not carried data.
 */
struct IntraOpScratch
{
    AccumScratch accum;
    std::vector<uint16_t> gatherW;
    std::vector<uint16_t> gatherX;
};

/** All mutable scratch one infer() call needs, reusable across calls. */
struct Workspace
{
    AccumScratch accum;

    /** Conv/pool window gather targets (sized to the widest window). */
    std::vector<uint16_t> gatherW;
    std::vector<uint16_t> gatherX;

    /** Recurrent hidden-state double buffers. */
    std::vector<uint16_t> hCodes;
    std::vector<uint16_t> hNext;
    std::vector<double> hRaw;
    std::vector<double> hRawNext;

    /** AvgPool fixed-point addend reuse. */
    std::vector<int64_t> addends;

    /** One cached conv plan per layer context index. */
    std::vector<ConvGatherPlan> convPlans;

    /** One scratch slice per task-pool lane (intra-op parallelism). */
    std::vector<IntraOpScratch> lanes;

    /**
     * Per-neuron costs of the layer currently being sharded. Shards
     * fill disjoint slots; the caller then reduces the flat array in
     * neuron order, reproducing the serial path's floating-point
     * accumulation order exactly (bitwise-identical energies).
     */
    std::vector<NeuronCost> neuronCosts;

    /** Lease flag: set while an infer() call owns this workspace. */
    std::atomic<bool> busy{false};

    /** Grow (never shrink) the per-lane scratch array. Must be called
     *  before the parallel region — lanes must not resize inside it. */
    void
    ensureLanes(size_t n)
    {
        if (lanes.size() < n)
            lanes.resize(n);
    }
};

} // namespace rapidnn::rna

#endif // RAPIDNN_RNA_WORKSPACE_HH
