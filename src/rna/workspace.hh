/**
 * @file
 * Reusable per-chip inference workspace.
 *
 * One Workspace is built at Chip::configure time and leased to each
 * infer() call, so the steady-state per-neuron hot loop performs zero
 * heap allocations: the counting scratch resets sparsely, the conv
 * gather buffers and recurrent state double-buffers are sized up front,
 * and conv im2col-style index plans are cached per input shape.
 * The busy flag lets concurrent infer() calls on one chip stay safe:
 * the loser of the exchange falls back to a private spare workspace.
 */

#ifndef RAPIDNN_RNA_WORKSPACE_HH
#define RAPIDNN_RNA_WORKSPACE_HH

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/array.hh"
#include "nvm/op_cost.hh"
#include "rna/accumulation.hh"

namespace rapidnn::composer {
struct RLayer;
} // namespace rapidnn::composer

namespace rapidnn::rna {

/**
 * Per-phase cost breakdown of one neuron evaluation (Figure 13).
 * Lives here (rather than rna_block.hh, which includes this header)
 * because the workspace stores one per neuron for the deterministic
 * intra-op reduction.
 */
struct NeuronCost
{
    nvm::OpCost weightedAccum;
    nvm::OpCost activation;
    nvm::OpCost encoding;
    nvm::OpCost pooling;

    nvm::OpCost
    total() const
    {
        return weightedAccum + activation + encoding + pooling;
    }

    NeuronCost &
    operator+=(const NeuronCost &o)
    {
        weightedAccum += o.weightedAccum;
        activation += o.activation;
        encoding += o.encoding;
        pooling += o.pooling;
        return *this;
    }
};

/**
 * Cached im2col-style gather plan for one conv layer at one input
 * shape: flat index maps from each output position's receptive-field
 * window into the layer's per-channel weight codes and into the input
 * tensor, with same-padding boundary clipping folded in. Built on the
 * first infer (input H/W are unknown at configure) and reused while the
 * shape matches. Slot order mirrors the reference gather loops
 * (channel, then valid ky, then valid kx) so results stay identical.
 */
struct ConvGatherPlan
{
    size_t inC = 0;
    size_t inH = 0;
    size_t inW = 0;
    size_t outH = 0;
    size_t outW = 0;
    /** Prefix offsets into the index arrays: window for output
     *  position p spans slots [start[p], start[p + 1]). Owned when
     *  built at run time; views when installed from a model blob. */
    Array<uint32_t> start;
    Array<uint32_t> weightIdx;  //!< slot -> per-channel weight code
    Array<uint32_t> inputIdx;   //!< slot -> input tensor code

    bool
    matches(size_t c, size_t h, size_t w) const
    {
        return c == inC && h == inH && w == inW;
    }
};

/**
 * Build the gather plan for a conv layer at input shape [inC, h, w].
 * Slot order is channel, then valid ky, then valid kx — the exact
 * order of the reference gather loops, so fast-path results stay
 * bitwise identical. Shared by Chip::infer (on-demand plans for
 * non-canonical shapes) and the blob writer (precomputed plans at the
 * canonical shape).
 */
void buildConvGatherPlan(ConvGatherPlan &plan,
                         const composer::RLayer &layer, size_t inC,
                         size_t h, size_t w);

/**
 * Per-lane scratch for intra-op parallel shard execution: each task
 * pool lane gets a private counting scratch and conv gather buffers,
 * so shards never contend. Results cannot depend on which lane runs a
 * shard — the scratch is reset-to-zero state, not carried data.
 */
struct IntraOpScratch
{
    AccumScratch accum;
    std::vector<uint16_t> gatherW;
    std::vector<uint16_t> gatherX;

    /** Kernel-path (SIMD) lane buffers: packed conv window gathers and
     *  per-neuron AM batch scratch. gx8 is a gather8 target/source so
     *  it lives in slack-padded aligned storage. */
    simd::AlignedVec<uint8_t> gx8;
    simd::AlignedVec<uint8_t> gw8;
    simd::AlignedVec<uint32_t> amKeys;
    simd::AlignedVec<uint32_t> amRows;

    /** Batched-path pair-key stripes (one per batch lane) for the
     *  (output-neuron x lane) tiles of Chip::inferBatch. */
    simd::AlignedVec<uint16_t> keysB;
    /** Per-lane results of one neuron's batched-lanes accumulation. */
    std::vector<AccumResult> accumResB;
};

/** All mutable scratch one infer() call needs, reusable across calls. */
struct Workspace
{
    AccumScratch accum;

    /** Conv/pool window gather targets (sized to the widest window). */
    std::vector<uint16_t> gatherW;
    std::vector<uint16_t> gatherX;

    /**
     * Kernel-path (SIMD) buffers. act8/h8 hold a whole layer's input /
     * hidden-state codes narrowed to uint8 once per layer; gx8/gw8 are
     * per-window packed gather targets; vals stages a layer's
     * pre-/post-activation values for the batched AM lookups keyed
     * through amKeys/amRows. act8 and gx8 feed KernelOps::gather8, so
     * they must stay in slack-padded AlignedVec storage.
     */
    simd::AlignedVec<uint8_t> act8;
    simd::AlignedVec<uint8_t> h8;
    simd::AlignedVec<uint8_t> gx8;
    simd::AlignedVec<uint8_t> gw8;
    simd::AlignedVec<double> vals;
    simd::AlignedVec<uint32_t> amKeys;
    simd::AlignedVec<uint32_t> amRows;

    /** Recurrent hidden-state double buffers. */
    std::vector<uint16_t> hCodes;
    std::vector<uint16_t> hNext;
    std::vector<double> hRaw;
    std::vector<double> hRawNext;

    /**
     * Batch-strided buffers for Chip::inferBatch, arena-sized at
     * configure time from ChipConfig::maxBatch (larger batches still
     * work — buffers grow on first use). Lane L's stripe of a
     * lane-strided buffer starts at L * stride; actB8 stripes are
     * gather8 sources, which is safe because an interior lane's <= 3
     * byte overread lands in the next lane's (readable) stripe and the
     * last lane is covered by the AlignedVec tail slack. valsB /
     * codesB / neuronCostsB are neuron-major (slot = neuron * lanes +
     * lane) so a contiguous neuron range over all lanes feeds one
     * cross-lane AM batch lookup.
     */
    simd::AlignedVec<uint8_t> actB8;   //!< lane-strided narrowed codes
    simd::AlignedVec<uint8_t> gx8B;    //!< lane-strided conv windows
    simd::AlignedVec<uint8_t> h8B;     //!< lane-strided narrowed state
    simd::AlignedVec<uint16_t> keysB;  //!< pairKeys8Lanes stripes
    simd::AlignedVec<uint16_t> keysHB; //!< recurrent feedback keys
    simd::AlignedVec<double> valsB;    //!< neuron-major staged values
    simd::AlignedVec<uint16_t> codesB; //!< neuron-major encode staging
    std::vector<const uint8_t *> lanePtrsX;  //!< per-lane x sources
    std::vector<const uint8_t *> lanePtrsH;  //!< per-lane h sources
    std::vector<uint16_t> hCodesB;  //!< lane-strided state buffers
    std::vector<uint16_t> hNextB;
    std::vector<double> hRawB;
    std::vector<double> hRawNextB;
    std::vector<uint64_t> stepWorstB;  //!< per-lane recurrent cycles
    /** Neuron-major x lane cost slots; each lane's flat reduction
     *  replays the serial per-neuron accumulation order exactly. */
    std::vector<NeuronCost> neuronCostsB;
    /** Per-lane results of one neuron's batched-lanes accumulation. */
    std::vector<AccumResult> accumResB;
    /** Neuron-major x lane accumulation-cost slots for the batched
     *  dense/conv paths: only the weighted-accumulation OpCost varies
     *  per slot (activation/encoding query costs are per-layer
     *  constants the reduction re-adds per neuron in serial order), so
     *  staging 16-byte OpCosts instead of NeuronCosts quarters the
     *  cost-staging traffic. */
    std::vector<nvm::OpCost> accumCostB;

    /** AvgPool fixed-point addend reuse. */
    std::vector<int64_t> addends;

    /** One cached conv plan per layer context index. */
    std::vector<ConvGatherPlan> convPlans;

    /** One scratch slice per task-pool lane (intra-op parallelism). */
    std::vector<IntraOpScratch> lanes;

    /**
     * Per-neuron costs of the layer currently being sharded. Shards
     * fill disjoint slots; the caller then reduces the flat array in
     * neuron order, reproducing the serial path's floating-point
     * accumulation order exactly (bitwise-identical energies).
     */
    std::vector<NeuronCost> neuronCosts;

    /**
     * Recycled buffer pools for the per-layer activation tensors and
     * raw-value staging that flow through infer(). take*() hands out
     * the deepest pooled buffer (capacity intact, size clobbered by
     * the caller); give*() returns it. Seeded at configure time from
     * the model's canonical input shape, so the steady-state serve
     * path allocates nothing — the arena the blob format's zero-copy
     * loading pairs with.
     */
    std::vector<std::vector<uint16_t>> codePool;
    std::vector<std::vector<double>> rawPool;

    std::vector<uint16_t>
    takeCodes()
    {
        if (codePool.empty())
            return {};
        std::vector<uint16_t> buf = std::move(codePool.back());
        codePool.pop_back();
        return buf;
    }

    void
    giveCodes(std::vector<uint16_t> &&buf)
    {
        if (buf.capacity() > 0)
            codePool.push_back(std::move(buf));
    }

    std::vector<double>
    takeRaw()
    {
        if (rawPool.empty())
            return {};
        std::vector<double> buf = std::move(rawPool.back());
        rawPool.pop_back();
        return buf;
    }

    void
    giveRaw(std::vector<double> &&buf)
    {
        if (buf.capacity() > 0)
            rawPool.push_back(std::move(buf));
    }

    /**
     * Lease flag: set while an infer() call owns this workspace. This
     * is a lock-free capability guarding every other field of the
     * struct — conceptually GUARDED_BY(busy), but atomics are outside
     * clang's thread-safety analysis, so the protocol lives in
     * WorkspaceLease (rna/chip.cc) under a documented
     * RAPIDNN_NO_THREAD_SAFETY_ANALYSIS escape: false->true only by
     * the one winning exchange(acquire), true->false only by that
     * winner's store(release). See DESIGN.md §11.
     */
    std::atomic<bool> busy{false};

    /** Grow (never shrink) the per-lane scratch array. Must be called
     *  before the parallel region — lanes must not resize inside it. */
    void
    ensureLanes(size_t n)
    {
        if (lanes.size() < n)
            lanes.resize(n);
    }
};

} // namespace rapidnn::rna

#endif // RAPIDNN_RNA_WORKSPACE_HH
