#include "rna/rna_block.hh"

#include <algorithm>

#include "common/check.hh"

namespace rapidnn::rna {

namespace {

/** Owned uint8 narrowing of range-validated (< 256) 16-bit codes. */
std::vector<uint8_t>
narrowCodes(const uint16_t *codes, size_t n)
{
    std::vector<uint8_t> out(n);
    for (size_t i = 0; i < n; ++i)
        out[i] = static_cast<uint8_t>(codes[i]);
    return out;
}

/** Pin a blob-supplied packed array to its validated 16-bit twin. */
void
checkPacked(const Array<uint8_t> &packed, const uint16_t *codes,
            size_t n, const char *what)
{
    RAPIDNN_CHECK(packed.size() == n, what);
    for (size_t i = 0; i < n; ++i)
        RAPIDNN_CHECK(packed[i] == codes[i], what);
}

} // namespace

RnaLayerContext::RnaLayerContext(const composer::RLayer &layer,
                                 const nvm::CostModel &model,
                                 nvm::SearchMode mode,
                                 const simd::KernelOps *kops)
    : _layer(layer), _model(model), _kops(kops)
{
    RAPIDNN_ASSERT(layer.kind == composer::RLayerKind::Dense ||
                   layer.kind == composer::RLayerKind::Conv ||
                   layer.kind == composer::RLayerKind::Recurrent,
                   "RnaLayerContext needs a compute layer");

    _engines.reserve(layer.productTables.size());
    for (size_t c = 0; c < layer.productTables.size(); ++c)
        _engines.emplace_back(layer.productTables[c],
                              layer.weightCodebooks[c].size(),
                              layer.inputEntries(), model);

    if (layer.kind == composer::RLayerKind::Recurrent) {
        _stateEngine.emplace(layer.stateProductTables[0],
                             layer.stateWeightCodebooks[0].size(),
                             layer.stateCodebook.size(), model);
        const auto &values = layer.stateCodebook.values();
        std::vector<double> rows(values.size());
        for (size_t i = 0; i < values.size(); ++i)
            rows[i] = static_cast<double>(i);
        _stateEncodingAm.emplace(values, std::move(rows), 32, model,
                                 mode);
    }

    if (layer.activation) {
        _activationAm.emplace(layer.activation->inputs(),
                              layer.activation->outputs(), 32, model,
                              mode);
    }
    if (!layer.outputEncoder.empty()) {
        // Encoding AM: keys are the target codebook values; the row
        // index found by the search IS the encoded value.
        const auto &values = layer.outputEncoder.target().values();
        std::vector<double> rows(values.size());
        for (size_t i = 0; i < values.size(); ++i)
            rows[i] = static_cast<double>(i);
        _encodingAm.emplace(values, std::move(rows), 32, model, mode);
    }

    // Configure-time code-range validation: weight codes are checked
    // against their product-table dimensions once here, so the
    // per-edge hot loops can index without asserting. (Input codes are
    // in range by construction: every encoder's row count equals its
    // engine's input-entry count.)
    for (size_t c = 0; c < layer.weightCodes.size(); ++c)
        for (const uint16_t code : layer.weightCodes[c])
            RAPIDNN_ASSERT(code < _engines[c].weightEntries(),
                           "weight code out of table range");
    if (_stateEngine)
        for (const uint16_t code : layer.stateWeightCodes[0])
            RAPIDNN_ASSERT(code < _stateEngine->weightEntries(),
                           "state weight code out of table range");

    // Transposed (neuron-major) weight codes for the fast path. A
    // blob-loaded model carries them precomputed (views into the
    // mapped file, shared by every replica); heap models derive them
    // here once. Blob-supplied columns are untrusted: their size is
    // pinned to the row-major codes and every code is range-checked
    // below, exactly like the row-major arrays above.
    if (layer.kind == composer::RLayerKind::Dense) {
        if (!layer.denseColumns.empty()) {
            RAPIDNN_CHECK(layer.denseColumns.size() ==
                              layer.weightCodes[0].size(),
                          "dense column table size mismatch");
            _denseColumns = layer.denseColumns;
        } else {
            _denseColumns = composer::denseColumnsOf(layer);
        }
        for (const uint16_t code : _denseColumns)
            RAPIDNN_CHECK(code < _engines[0].weightEntries(),
                          "dense column code out of table range");
    } else if (layer.kind == composer::RLayerKind::Recurrent) {
        if (!layer.recXColumns.empty()) {
            RAPIDNN_CHECK(layer.recXColumns.size() ==
                              layer.weightCodes[0].size(),
                          "recurrent x column table size mismatch");
            _recXColumns = layer.recXColumns;
        } else {
            _recXColumns = composer::recXColumnsOf(layer);
        }
        if (!layer.recHColumns.empty()) {
            RAPIDNN_CHECK(layer.recHColumns.size() ==
                              layer.stateWeightCodes[0].size(),
                          "recurrent h column table size mismatch");
            _recHColumns = layer.recHColumns;
        } else {
            _recHColumns = composer::recHColumnsOf(layer);
        }
        for (const uint16_t code : _recXColumns)
            RAPIDNN_CHECK(code < _engines[0].weightEntries(),
                          "recurrent x column code out of table range");
        for (const uint16_t code : _recHColumns)
            RAPIDNN_CHECK(code < _stateEngine->weightEntries(),
                          "recurrent h column code out of table range");
    }

    // Packed (uint8) code mirrors for the SIMD kernel paths. Every
    // code is range-validated above, so narrowing is lossless when the
    // codebooks fit 256 entries. Blob-supplied packed sections are
    // untrusted: their sizes and elements are pinned to the (equally
    // validated) 16-bit arrays.
    bool packable = !_engines.empty();
    for (const auto &engine : _engines)
        packable = packable && engine.packable();
    _packed = _kops != nullptr && packable;
    _packedRec = _packed && _stateEngine && _stateEngine->packable();
    if (_packed && layer.kind == composer::RLayerKind::Dense) {
        if (!layer.denseColumns8.empty()) {
            checkPacked(layer.denseColumns8, _denseColumns.data(),
                        _denseColumns.size(),
                        "dense packed columns mismatch");
            _denseColumns8 = layer.denseColumns8;
        } else {
            _denseColumns8 =
                narrowCodes(_denseColumns.data(), _denseColumns.size());
        }
    } else if (_packed && layer.kind == composer::RLayerKind::Conv) {
        const bool fromBlob = !layer.weightCodes8.empty();
        if (fromBlob)
            RAPIDNN_CHECK(layer.weightCodes8.size() ==
                              layer.weightCodes.size(),
                          "conv packed channel count mismatch");
        _convChannel8.reserve(layer.weightCodes.size());
        for (size_t oc = 0; oc < layer.weightCodes.size(); ++oc) {
            const auto &codes = layer.weightCodes[oc];
            if (fromBlob) {
                checkPacked(layer.weightCodes8[oc], codes.data(),
                            codes.size(),
                            "conv packed weights mismatch");
                _convChannel8.push_back(layer.weightCodes8[oc]);
            } else {
                _convChannel8.push_back(
                    narrowCodes(codes.data(), codes.size()));
            }
        }
    } else if (_packedRec &&
               layer.kind == composer::RLayerKind::Recurrent) {
        if (!layer.recXColumns8.empty()) {
            checkPacked(layer.recXColumns8, _recXColumns.data(),
                        _recXColumns.size(),
                        "recurrent x packed columns mismatch");
            _recXColumns8 = layer.recXColumns8;
        } else {
            _recXColumns8 =
                narrowCodes(_recXColumns.data(), _recXColumns.size());
        }
        if (!layer.recHColumns8.empty()) {
            checkPacked(layer.recHColumns8, _recHColumns.data(),
                        _recHColumns.size(),
                        "recurrent h packed columns mismatch");
            _recHColumns8 = layer.recHColumns8;
        } else {
            _recHColumns8 =
                narrowCodes(_recHColumns.data(), _recHColumns.size());
        }
    }

    // Counting-cycle hints for the kernel paths: the parallel-counting
    // phase is a pure function of the weight codes, so each canonical
    // weight array's value is derived once here and handed back into
    // runPacked/runKeyed per neuron instead of being re-histogrammed
    // per accumulation. Clipped conv windows (gathered into lane
    // scratch) keep computing it on the fly.
    if (_kops != nullptr) {
        if (layer.kind == composer::RLayerKind::Dense) {
            _denseCounting.resize(layer.outCount);
            for (size_t j = 0; j < layer.outCount; ++j)
                _denseCounting[j] = _engines[0].weightCountingCycles(
                    _denseColumns.data() + j * layer.inCount,
                    layer.inCount);
        } else if (layer.kind == composer::RLayerKind::Conv &&
                   _packed) {
            _convCounting.resize(_convChannel8.size());
            for (size_t oc = 0; oc < _convChannel8.size(); ++oc)
                _convCounting[oc] = _engines[oc].weightCountingCycles(
                    _convChannel8[oc].data(),
                    _convChannel8[oc].size());
        } else if (layer.kind == composer::RLayerKind::Recurrent) {
            _recXCounting.resize(layer.outCount);
            _recHCounting.resize(layer.outCount);
            for (size_t h = 0; h < layer.outCount; ++h) {
                _recXCounting[h] = _engines[0].weightCountingCycles(
                    _recXColumns.data() + h * layer.inCount,
                    layer.inCount);
                _recHCounting[h] = _stateEngine->weightCountingCycles(
                    _recHColumns.data() + h * layer.outCount,
                    layer.outCount);
            }
        }
    }

    if (_activationAm)
        _activationQueryCost = _activationAm->queryCost();
    if (_encodingAm)
        _encodingQueryCost = _encodingAm->queryCost();
}

namespace {

/** True when p lies inside [base, base + bytes) at a whole multiple
 *  of strideBytes; sets index to that multiple. Used to map a weight
 *  pointer back to the canonical column it came from. */
bool
strideIndexOf(const void *p, const void *base, size_t bytes,
              size_t strideBytes, size_t &index)
{
    const uintptr_t pp = reinterpret_cast<uintptr_t>(p);
    const uintptr_t bb = reinterpret_cast<uintptr_t>(base);
    if (bytes == 0 || strideBytes == 0 || pp < bb || pp - bb >= bytes)
        return false;
    const uintptr_t off = pp - bb;
    if (off % strideBytes != 0)
        return false;
    index = static_cast<size_t>(off / strideBytes);
    return true;
}

} // namespace

const uint32_t *
RnaLayerContext::countingHint(size_t channel, const void *w,
                              size_t fanIn) const
{
    size_t j = 0;
    switch (_layer.kind) {
      case composer::RLayerKind::Dense:
        if (fanIn != _layer.inCount || _denseCounting.empty())
            return nullptr;
        if (strideIndexOf(w, _denseColumns8.data(),
                          _denseColumns8.size(), _layer.inCount, j) ||
            strideIndexOf(w, _denseColumns.data(),
                          _denseColumns.size() * sizeof(uint16_t),
                          _layer.inCount * sizeof(uint16_t), j))
            return &_denseCounting[j];
        return nullptr;
      case composer::RLayerKind::Conv:
        if (_convCounting.empty() || channel >= _convChannel8.size())
            return nullptr;
        if (w == _convChannel8[channel].data() &&
            fanIn == _convChannel8[channel].size())
            return &_convCounting[channel];
        return nullptr;
      case composer::RLayerKind::Recurrent:
        if (_recXCounting.empty())
            return nullptr;
        if (fanIn == _layer.inCount &&
            (strideIndexOf(w, _recXColumns8.data(),
                           _recXColumns8.size(), _layer.inCount, j) ||
             strideIndexOf(w, _recXColumns.data(),
                           _recXColumns.size() * sizeof(uint16_t),
                           _layer.inCount * sizeof(uint16_t), j)))
            return &_recXCounting[j];
        if (fanIn == _layer.outCount &&
            (strideIndexOf(w, _recHColumns8.data(),
                           _recHColumns8.size(), _layer.outCount, j) ||
             strideIndexOf(w, _recHColumns.data(),
                           _recHColumns.size() * sizeof(uint16_t),
                           _layer.outCount * sizeof(uint16_t), j)))
            return &_recHCounting[j];
        return nullptr;
      default:
        return nullptr;
    }
}

NeuronResult
RnaLayerContext::evaluate(size_t channel,
                          const std::vector<uint16_t> &weightCodes,
                          const std::vector<uint16_t> &inputCodes,
                          double bias) const
{
    RAPIDNN_ASSERT(channel < _engines.size(), "channel out of range");

    NeuronResult result;
    const AccumResult accum =
        _engines[channel].run(weightCodes, inputCodes, bias);
    result.cost.weightedAccum = accum.cost.total();

    double value = accum.value;
    if (_activationAm)
        value = _activationAm->lookup(value, result.cost.activation);
    result.rawValue = value;

    if (_encodingAm) {
        result.code = static_cast<uint16_t>(
            _encodingAm->lookupRow(value, result.cost.encoding));
        result.encoded = true;
    }
    return result;
}

NeuronResult
RnaLayerContext::evaluateFast(size_t channel,
                              const uint16_t *weightCodes,
                              const uint16_t *inputCodes, size_t fanIn,
                              double bias, AccumScratch &scratch) const
{
    NeuronResult result;
    const AccumResult accum = _engines[channel].run(
        weightCodes, inputCodes, fanIn, bias, scratch);
    result.cost.weightedAccum = accum.cost.total();

    double value = accum.value;
    if (_activationAm)
        value = _activationAm->lookup(value, result.cost.activation);
    result.rawValue = value;

    if (_encodingAm) {
        result.code = static_cast<uint16_t>(
            _encodingAm->lookupRow(value, result.cost.encoding));
        result.encoded = true;
    }
    return result;
}

AccumResult
RnaLayerContext::accumulatePacked(size_t channel, const uint8_t *w8,
                                  const uint8_t *x8, size_t fanIn,
                                  double bias, AccumScratch &sc) const
{
    RAPIDNN_ASSERT(_kops != nullptr && _packed,
                   "accumulatePacked without a packed kernel context");
    return _engines[channel].runPacked(*_kops, w8, x8, fanIn, bias, sc,
                                       countingHint(channel, w8, fanIn));
}

AccumResult
RnaLayerContext::accumulateKeyed(size_t channel, const uint16_t *w,
                                 const uint16_t *x, size_t fanIn,
                                 double bias, AccumScratch &sc) const
{
    RAPIDNN_ASSERT(_kops != nullptr,
                   "accumulateKeyed without a kernel context");
    return _engines[channel].runKeyed(*_kops, w, x, fanIn, bias, sc,
                                      countingHint(channel, w, fanIn));
}

AccumResult
RnaLayerContext::accumulatePrekeyed(size_t channel,
                                    const uint16_t *keys, size_t fanIn,
                                    double bias, AccumScratch &sc,
                                    const uint32_t *countingCycles) const
{
    RAPIDNN_ASSERT(_kops != nullptr && _packed,
                   "accumulatePrekeyed without a packed kernel context");
    return _engines[channel].runPrekeyed(*_kops, keys, fanIn, bias, sc,
                                         countingCycles);
}

void
RnaLayerContext::accumulatePrekeyedLanes(
    size_t channel, const uint16_t *keys, size_t keyStride,
    size_t lanes, size_t fanIn, double bias, AccumScratch &sc,
    const uint32_t *countingCycles, AccumResult *results) const
{
    RAPIDNN_ASSERT(_kops != nullptr && _packed,
                   "accumulatePrekeyedLanes without a packed kernel "
                   "context");
    _engines[channel].runPrekeyedLanes(*_kops, keys, keyStride, lanes,
                                       fanIn, bias, sc, countingCycles,
                                       results);
}

uint32_t
RnaLayerContext::packedCountingCycles(size_t channel, const uint8_t *w8,
                                      size_t fanIn,
                                      AccumScratch &sc) const
{
    if (const uint32_t *hint = countingHint(channel, w8, fanIn))
        return *hint;
    return _engines[channel].weightCountingCycles(w8, fanIn, sc);
}

NeuronResult
RnaLayerContext::evaluatePacked(size_t channel, const uint8_t *w8,
                                const uint8_t *x8, size_t fanIn,
                                double bias, AccumScratch &sc) const
{
    NeuronResult result;
    const AccumResult accum = _engines[channel].runPacked(
        *_kops, w8, x8, fanIn, bias, sc,
        countingHint(channel, w8, fanIn));
    result.cost.weightedAccum = accum.cost.total();

    double value = accum.value;
    if (_activationAm)
        value = _activationAm->lookup(value, result.cost.activation);
    result.rawValue = value;

    if (_encodingAm) {
        result.code = static_cast<uint16_t>(
            _encodingAm->lookupRow(value, result.cost.encoding));
        result.encoded = true;
    }
    return result;
}

NeuronResult
RnaLayerContext::evaluateRecurrentStepPacked(
    const uint8_t *xWeightCodes, const uint8_t *xCodes, size_t features,
    const uint8_t *hWeightCodes, const uint8_t *hCodes, size_t hidden,
    double bias, AccumScratch &scratch) const
{
    NeuronResult result;
    // Mirrors evaluateRecurrentStepFast: both operand paths tally in
    // the same crossbar, costs add, values add.
    const AccumResult xAccum = _engines[0].runPacked(
        *_kops, xWeightCodes, xCodes, features, bias, scratch,
        countingHint(0, xWeightCodes, features));
    const AccumResult hAccum = _stateEngine->runPacked(
        *_kops, hWeightCodes, hCodes, hidden, 0.0, scratch,
        countingHint(0, hWeightCodes, hidden));
    result.cost.weightedAccum =
        xAccum.cost.total() + hAccum.cost.total();

    double value = xAccum.value + hAccum.value;
    if (_activationAm)
        value = _activationAm->lookup(value, result.cost.activation);
    result.rawValue = value;

    result.code = static_cast<uint16_t>(
        _stateEncodingAm->lookupRow(value, result.cost.encoding));
    result.encoded = true;
    return result;
}

NeuronResult
RnaLayerContext::evaluateRecurrentStepPrekeyed(
    const uint16_t *xKeys, size_t features, const uint16_t *hKeys,
    size_t hidden, double bias, AccumScratch &scratch,
    const uint32_t *xCounting, const uint32_t *hCounting) const
{
    NeuronResult result;
    // Mirrors evaluateRecurrentStepPacked: both operand paths tally in
    // the same crossbar, costs add, values add.
    const AccumResult xAccum = _engines[0].runPrekeyed(
        *_kops, xKeys, features, bias, scratch, xCounting);
    const AccumResult hAccum = _stateEngine->runPrekeyed(
        *_kops, hKeys, hidden, 0.0, scratch, hCounting);
    result.cost.weightedAccum =
        xAccum.cost.total() + hAccum.cost.total();

    double value = xAccum.value + hAccum.value;
    if (_activationAm)
        value = _activationAm->lookup(value, result.cost.activation);
    result.rawValue = value;

    result.code = static_cast<uint16_t>(
        _stateEncodingAm->lookupRow(value, result.cost.encoding));
    result.encoded = true;
    return result;
}

void
RnaLayerContext::activateBatch(const double *in, double *out, size_t n,
                               uint32_t *keyScratch,
                               uint32_t *rowScratch) const
{
    if (!_activationAm) {
        if (in != out)
            for (size_t i = 0; i < n; ++i)
                out[i] = in[i];
        return;
    }
    _activationAm->lookupBatch(*_kops, in, n, keyScratch, rowScratch,
                               out);
}

void
RnaLayerContext::encodeBatch(const double *in, size_t n,
                             uint32_t *keyScratch, uint32_t *rowScratch,
                             uint16_t *codes) const
{
    RAPIDNN_ASSERT(_encodingAm.has_value(),
                   "encodeBatch without an encoding AM");
    _encodingAm->lookupRowsBatch(*_kops, in, n, keyScratch, rowScratch);
    for (size_t i = 0; i < n; ++i)
        codes[i] = static_cast<uint16_t>(rowScratch[i]);
}

NeuronResult
RnaLayerContext::evaluateRecurrentStep(
    const std::vector<uint16_t> &xWeightCodes,
    const std::vector<uint16_t> &xCodes,
    const std::vector<uint16_t> &hWeightCodes,
    const std::vector<uint16_t> &hCodes, double bias) const
{
    RAPIDNN_ASSERT(_stateEngine.has_value(),
                   "evaluateRecurrentStep on a non-recurrent layer");

    NeuronResult result;
    // Both operand paths tally in the same crossbar; the feedback
    // products join the same adder tree, so costs simply add.
    const AccumResult xAccum =
        _engines[0].run(xWeightCodes, xCodes, bias);
    const AccumResult hAccum =
        _stateEngine->run(hWeightCodes, hCodes, 0.0);
    result.cost.weightedAccum =
        xAccum.cost.total() + hAccum.cost.total();

    double value = xAccum.value + hAccum.value;
    if (_activationAm)
        value = _activationAm->lookup(value, result.cost.activation);
    result.rawValue = value;

    result.code = static_cast<uint16_t>(
        _stateEncodingAm->lookupRow(value, result.cost.encoding));
    result.encoded = true;
    return result;
}

NeuronResult
RnaLayerContext::evaluateRecurrentStepFast(
    const uint16_t *xWeightCodes, const uint16_t *xCodes,
    size_t features, const uint16_t *hWeightCodes,
    const uint16_t *hCodes, size_t hidden, double bias,
    AccumScratch &scratch) const
{
    NeuronResult result;
    // Mirrors evaluateRecurrentStep: both operand paths tally in the
    // same crossbar, costs add, values add.
    const AccumResult xAccum =
        _engines[0].run(xWeightCodes, xCodes, features, bias, scratch);
    const AccumResult hAccum =
        _stateEngine->run(hWeightCodes, hCodes, hidden, 0.0, scratch);
    result.cost.weightedAccum =
        xAccum.cost.total() + hAccum.cost.total();

    double value = xAccum.value + hAccum.value;
    if (_activationAm)
        value = _activationAm->lookup(value, result.cost.activation);
    result.rawValue = value;

    result.code = static_cast<uint16_t>(
        _stateEncodingAm->lookupRow(value, result.cost.encoding));
    result.encoded = true;
    return result;
}

uint16_t
RnaLayerContext::encodeState(double value, nvm::OpCost &cost) const
{
    RAPIDNN_ASSERT(_stateEncodingAm.has_value(),
                   "encodeState on a non-recurrent layer");
    return static_cast<uint16_t>(
        _stateEncodingAm->lookupRow(value, cost));
}

uint16_t
RnaLayerContext::poolMax(const std::vector<uint16_t> &codes,
                         const nvm::CostModel &model, nvm::OpCost &cost)
{
    RAPIDNN_ASSERT(!codes.empty(), "poolMax on empty window");
    // The pooling AM is loaded with the window's encoded values, then a
    // single MAX search returns the winner. Codes are order-preserving
    // (sorted codebooks), so max code == max value.
    nvm::Ndcam cam(16, model);
    std::vector<uint32_t> keys(codes.begin(), codes.end());
    cam.load(keys, cost);
    const size_t row = cam.searchMax(cost);
    return codes[row];
}

uint16_t
RnaLayerContext::poolMaxFast(const uint16_t *codes, size_t count,
                             const nvm::CostModel &model,
                             nvm::OpCost &cost,
                             const simd::KernelOps *ops)
{
    RAPIDNN_ASSERT(count > 0, "poolMax on empty window");
    // Charge exactly what poolMax's Ndcam would: one load of `count`
    // keys, then one MAX search over `count` 16-bit rows.
    cost += {1, model.camWriteEnergy * static_cast<double>(count)};
    cost += model.camSearch(count, 16);
    if (ops)
        return ops->maxU16(codes, count);
    // First occurrence of the maximum, matching std::max_element.
    uint16_t best = codes[0];
    for (size_t i = 1; i < count; ++i)
        if (codes[i] > best)
            best = codes[i];
    return best;
}

void
RnaLayerContext::prepareWorkspace(Workspace &ws) const
{
    for (const auto &engine : _engines)
        ws.accum.ensure(engine.weightEntries(), engine.inputEntries());
    if (_stateEngine)
        ws.accum.ensure(_stateEngine->weightEntries(),
                        _stateEngine->inputEntries());
    if (_kops)
        prepareKernelScratch(ws.accum);
    if (_layer.kind == composer::RLayerKind::Conv) {
        const size_t windowMax = _layer.weightCodes[0].size();
        if (ws.gatherW.size() < windowMax)
            ws.gatherW.resize(windowMax);
        if (ws.gatherX.size() < windowMax)
            ws.gatherX.resize(windowMax);
        if (_kops) {
            ws.gx8.ensure(windowMax);
            ws.gw8.ensure(windowMax);
        }
    } else if (_layer.kind == composer::RLayerKind::Recurrent) {
        const size_t hidden = _layer.outCount;
        if (ws.hCodes.size() < hidden) {
            ws.hCodes.resize(hidden);
            ws.hNext.resize(hidden);
            ws.hRaw.resize(hidden);
            ws.hRawNext.resize(hidden);
        }
    }
}

void
RnaLayerContext::prepareScratch(IntraOpScratch &scratch) const
{
    for (const auto &engine : _engines)
        scratch.accum.ensure(engine.weightEntries(),
                             engine.inputEntries());
    if (_stateEngine)
        scratch.accum.ensure(_stateEngine->weightEntries(),
                             _stateEngine->inputEntries());
    if (_kops)
        prepareKernelScratch(scratch.accum);
    if (_layer.kind == composer::RLayerKind::Conv) {
        const size_t windowMax = _layer.weightCodes[0].size();
        if (scratch.gatherW.size() < windowMax)
            scratch.gatherW.resize(windowMax);
        if (scratch.gatherX.size() < windowMax)
            scratch.gatherX.resize(windowMax);
        if (_kops) {
            scratch.gx8.ensure(windowMax);
            scratch.gw8.ensure(windowMax);
        }
    }
}

void
RnaLayerContext::prepareKernelScratch(AccumScratch &accum) const
{
    // The kernel paths tally into a power-of-two padded key space and
    // stage one fan-in's worth of fused pair keys; size both here so
    // the hot loop never grows (growth would re-zero AlignedVec
    // contents mid-inference).
    size_t maxFanIn = _layer.kind == composer::RLayerKind::Conv
                          ? _layer.weightCodes[0].size()
                          : _layer.inCount;
    if (_stateEngine)
        maxFanIn = std::max(maxFanIn, _layer.outCount);
    for (const auto &engine : _engines)
        accum.ensurePadded(engine.weightEntries(), engine.keyShift(),
                           maxFanIn);
    if (_stateEngine)
        accum.ensurePadded(_stateEngine->weightEntries(),
                           _stateEngine->keyShift(), maxFanIn);
}

size_t
RnaLayerContext::productRows() const
{
    size_t rows = 0;
    for (const auto &table : _layer.productTables)
        rows += table.size();
    return rows;
}

} // namespace rapidnn::rna
