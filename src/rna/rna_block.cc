#include "rna/rna_block.hh"

#include "common/logging.hh"

namespace rapidnn::rna {

RnaLayerContext::RnaLayerContext(const composer::RLayer &layer,
                                 const nvm::CostModel &model,
                                 nvm::SearchMode mode)
    : _layer(layer), _model(model)
{
    RAPIDNN_ASSERT(layer.kind == composer::RLayerKind::Dense ||
                   layer.kind == composer::RLayerKind::Conv ||
                   layer.kind == composer::RLayerKind::Recurrent,
                   "RnaLayerContext needs a compute layer");

    _engines.reserve(layer.productTables.size());
    for (size_t c = 0; c < layer.productTables.size(); ++c)
        _engines.emplace_back(layer.productTables[c],
                              layer.weightCodebooks[c].size(),
                              layer.inputEntries(), model);

    if (layer.kind == composer::RLayerKind::Recurrent) {
        _stateEngine.emplace(layer.stateProductTables[0],
                             layer.stateWeightCodebooks[0].size(),
                             layer.stateCodebook.size(), model);
        const auto &values = layer.stateCodebook.values();
        std::vector<double> rows(values.size());
        for (size_t i = 0; i < values.size(); ++i)
            rows[i] = static_cast<double>(i);
        _stateEncodingAm.emplace(values, rows, 32, model, mode);
    }

    if (layer.activation) {
        _activationAm.emplace(layer.activation->inputs(),
                              layer.activation->outputs(), 32, model,
                              mode);
    }
    if (!layer.outputEncoder.empty()) {
        // Encoding AM: keys are the target codebook values; the row
        // index found by the search IS the encoded value.
        const auto &values = layer.outputEncoder.target().values();
        std::vector<double> rows(values.size());
        for (size_t i = 0; i < values.size(); ++i)
            rows[i] = static_cast<double>(i);
        _encodingAm.emplace(values, rows, 32, model, mode);
    }
}

NeuronResult
RnaLayerContext::evaluate(size_t channel,
                          const std::vector<uint16_t> &weightCodes,
                          const std::vector<uint16_t> &inputCodes,
                          double bias) const
{
    RAPIDNN_ASSERT(channel < _engines.size(), "channel out of range");

    NeuronResult result;
    const AccumResult accum =
        _engines[channel].run(weightCodes, inputCodes, bias);
    result.cost.weightedAccum = accum.cost.total();

    double value = accum.value;
    if (_activationAm)
        value = _activationAm->lookup(value, result.cost.activation);
    result.rawValue = value;

    if (_encodingAm) {
        result.code = static_cast<uint16_t>(
            _encodingAm->lookupRow(value, result.cost.encoding));
        result.encoded = true;
    }
    return result;
}

NeuronResult
RnaLayerContext::evaluateRecurrentStep(
    const std::vector<uint16_t> &xWeightCodes,
    const std::vector<uint16_t> &xCodes,
    const std::vector<uint16_t> &hWeightCodes,
    const std::vector<uint16_t> &hCodes, double bias) const
{
    RAPIDNN_ASSERT(_stateEngine.has_value(),
                   "evaluateRecurrentStep on a non-recurrent layer");

    NeuronResult result;
    // Both operand paths tally in the same crossbar; the feedback
    // products join the same adder tree, so costs simply add.
    const AccumResult xAccum =
        _engines[0].run(xWeightCodes, xCodes, bias);
    const AccumResult hAccum =
        _stateEngine->run(hWeightCodes, hCodes, 0.0);
    result.cost.weightedAccum =
        xAccum.cost.total() + hAccum.cost.total();

    double value = xAccum.value + hAccum.value;
    if (_activationAm)
        value = _activationAm->lookup(value, result.cost.activation);
    result.rawValue = value;

    result.code = static_cast<uint16_t>(
        _stateEncodingAm->lookupRow(value, result.cost.encoding));
    result.encoded = true;
    return result;
}

uint16_t
RnaLayerContext::encodeState(double value, nvm::OpCost &cost) const
{
    RAPIDNN_ASSERT(_stateEncodingAm.has_value(),
                   "encodeState on a non-recurrent layer");
    return static_cast<uint16_t>(
        _stateEncodingAm->lookupRow(value, cost));
}

uint16_t
RnaLayerContext::poolMax(const std::vector<uint16_t> &codes,
                         const nvm::CostModel &model, nvm::OpCost &cost)
{
    RAPIDNN_ASSERT(!codes.empty(), "poolMax on empty window");
    // The pooling AM is loaded with the window's encoded values, then a
    // single MAX search returns the winner. Codes are order-preserving
    // (sorted codebooks), so max code == max value.
    nvm::Ndcam cam(16, model);
    std::vector<uint32_t> keys(codes.begin(), codes.end());
    cam.load(keys, cost);
    const size_t row = cam.searchMax(cost);
    return codes[row];
}

size_t
RnaLayerContext::productRows() const
{
    size_t rows = 0;
    for (const auto &table : _layer.productTables)
        rows += table.size();
    return rows;
}

} // namespace rapidnn::rna
