#include "rna/rna_block.hh"

#include "common/check.hh"

namespace rapidnn::rna {

RnaLayerContext::RnaLayerContext(const composer::RLayer &layer,
                                 const nvm::CostModel &model,
                                 nvm::SearchMode mode)
    : _layer(layer), _model(model)
{
    RAPIDNN_ASSERT(layer.kind == composer::RLayerKind::Dense ||
                   layer.kind == composer::RLayerKind::Conv ||
                   layer.kind == composer::RLayerKind::Recurrent,
                   "RnaLayerContext needs a compute layer");

    _engines.reserve(layer.productTables.size());
    for (size_t c = 0; c < layer.productTables.size(); ++c)
        _engines.emplace_back(layer.productTables[c],
                              layer.weightCodebooks[c].size(),
                              layer.inputEntries(), model);

    if (layer.kind == composer::RLayerKind::Recurrent) {
        _stateEngine.emplace(layer.stateProductTables[0],
                             layer.stateWeightCodebooks[0].size(),
                             layer.stateCodebook.size(), model);
        const auto &values = layer.stateCodebook.values();
        std::vector<double> rows(values.size());
        for (size_t i = 0; i < values.size(); ++i)
            rows[i] = static_cast<double>(i);
        _stateEncodingAm.emplace(values, std::move(rows), 32, model,
                                 mode);
    }

    if (layer.activation) {
        _activationAm.emplace(layer.activation->inputs(),
                              layer.activation->outputs(), 32, model,
                              mode);
    }
    if (!layer.outputEncoder.empty()) {
        // Encoding AM: keys are the target codebook values; the row
        // index found by the search IS the encoded value.
        const auto &values = layer.outputEncoder.target().values();
        std::vector<double> rows(values.size());
        for (size_t i = 0; i < values.size(); ++i)
            rows[i] = static_cast<double>(i);
        _encodingAm.emplace(values, std::move(rows), 32, model, mode);
    }

    // Configure-time code-range validation: weight codes are checked
    // against their product-table dimensions once here, so the
    // per-edge hot loops can index without asserting. (Input codes are
    // in range by construction: every encoder's row count equals its
    // engine's input-entry count.)
    for (size_t c = 0; c < layer.weightCodes.size(); ++c)
        for (const uint16_t code : layer.weightCodes[c])
            RAPIDNN_ASSERT(code < _engines[c].weightEntries(),
                           "weight code out of table range");
    if (_stateEngine)
        for (const uint16_t code : layer.stateWeightCodes[0])
            RAPIDNN_ASSERT(code < _stateEngine->weightEntries(),
                           "state weight code out of table range");

    // Transposed (neuron-major) weight codes for the fast path. A
    // blob-loaded model carries them precomputed (views into the
    // mapped file, shared by every replica); heap models derive them
    // here once. Blob-supplied columns are untrusted: their size is
    // pinned to the row-major codes and every code is range-checked
    // below, exactly like the row-major arrays above.
    if (layer.kind == composer::RLayerKind::Dense) {
        if (!layer.denseColumns.empty()) {
            RAPIDNN_CHECK(layer.denseColumns.size() ==
                              layer.weightCodes[0].size(),
                          "dense column table size mismatch");
            _denseColumns = layer.denseColumns;
        } else {
            _denseColumns = composer::denseColumnsOf(layer);
        }
        for (const uint16_t code : _denseColumns)
            RAPIDNN_CHECK(code < _engines[0].weightEntries(),
                          "dense column code out of table range");
    } else if (layer.kind == composer::RLayerKind::Recurrent) {
        if (!layer.recXColumns.empty()) {
            RAPIDNN_CHECK(layer.recXColumns.size() ==
                              layer.weightCodes[0].size(),
                          "recurrent x column table size mismatch");
            _recXColumns = layer.recXColumns;
        } else {
            _recXColumns = composer::recXColumnsOf(layer);
        }
        if (!layer.recHColumns.empty()) {
            RAPIDNN_CHECK(layer.recHColumns.size() ==
                              layer.stateWeightCodes[0].size(),
                          "recurrent h column table size mismatch");
            _recHColumns = layer.recHColumns;
        } else {
            _recHColumns = composer::recHColumnsOf(layer);
        }
        for (const uint16_t code : _recXColumns)
            RAPIDNN_CHECK(code < _engines[0].weightEntries(),
                          "recurrent x column code out of table range");
        for (const uint16_t code : _recHColumns)
            RAPIDNN_CHECK(code < _stateEngine->weightEntries(),
                          "recurrent h column code out of table range");
    }
}

NeuronResult
RnaLayerContext::evaluate(size_t channel,
                          const std::vector<uint16_t> &weightCodes,
                          const std::vector<uint16_t> &inputCodes,
                          double bias) const
{
    RAPIDNN_ASSERT(channel < _engines.size(), "channel out of range");

    NeuronResult result;
    const AccumResult accum =
        _engines[channel].run(weightCodes, inputCodes, bias);
    result.cost.weightedAccum = accum.cost.total();

    double value = accum.value;
    if (_activationAm)
        value = _activationAm->lookup(value, result.cost.activation);
    result.rawValue = value;

    if (_encodingAm) {
        result.code = static_cast<uint16_t>(
            _encodingAm->lookupRow(value, result.cost.encoding));
        result.encoded = true;
    }
    return result;
}

NeuronResult
RnaLayerContext::evaluateFast(size_t channel,
                              const uint16_t *weightCodes,
                              const uint16_t *inputCodes, size_t fanIn,
                              double bias, AccumScratch &scratch) const
{
    NeuronResult result;
    const AccumResult accum = _engines[channel].run(
        weightCodes, inputCodes, fanIn, bias, scratch);
    result.cost.weightedAccum = accum.cost.total();

    double value = accum.value;
    if (_activationAm)
        value = _activationAm->lookup(value, result.cost.activation);
    result.rawValue = value;

    if (_encodingAm) {
        result.code = static_cast<uint16_t>(
            _encodingAm->lookupRow(value, result.cost.encoding));
        result.encoded = true;
    }
    return result;
}

NeuronResult
RnaLayerContext::evaluateRecurrentStep(
    const std::vector<uint16_t> &xWeightCodes,
    const std::vector<uint16_t> &xCodes,
    const std::vector<uint16_t> &hWeightCodes,
    const std::vector<uint16_t> &hCodes, double bias) const
{
    RAPIDNN_ASSERT(_stateEngine.has_value(),
                   "evaluateRecurrentStep on a non-recurrent layer");

    NeuronResult result;
    // Both operand paths tally in the same crossbar; the feedback
    // products join the same adder tree, so costs simply add.
    const AccumResult xAccum =
        _engines[0].run(xWeightCodes, xCodes, bias);
    const AccumResult hAccum =
        _stateEngine->run(hWeightCodes, hCodes, 0.0);
    result.cost.weightedAccum =
        xAccum.cost.total() + hAccum.cost.total();

    double value = xAccum.value + hAccum.value;
    if (_activationAm)
        value = _activationAm->lookup(value, result.cost.activation);
    result.rawValue = value;

    result.code = static_cast<uint16_t>(
        _stateEncodingAm->lookupRow(value, result.cost.encoding));
    result.encoded = true;
    return result;
}

NeuronResult
RnaLayerContext::evaluateRecurrentStepFast(
    const uint16_t *xWeightCodes, const uint16_t *xCodes,
    size_t features, const uint16_t *hWeightCodes,
    const uint16_t *hCodes, size_t hidden, double bias,
    AccumScratch &scratch) const
{
    NeuronResult result;
    // Mirrors evaluateRecurrentStep: both operand paths tally in the
    // same crossbar, costs add, values add.
    const AccumResult xAccum =
        _engines[0].run(xWeightCodes, xCodes, features, bias, scratch);
    const AccumResult hAccum =
        _stateEngine->run(hWeightCodes, hCodes, hidden, 0.0, scratch);
    result.cost.weightedAccum =
        xAccum.cost.total() + hAccum.cost.total();

    double value = xAccum.value + hAccum.value;
    if (_activationAm)
        value = _activationAm->lookup(value, result.cost.activation);
    result.rawValue = value;

    result.code = static_cast<uint16_t>(
        _stateEncodingAm->lookupRow(value, result.cost.encoding));
    result.encoded = true;
    return result;
}

uint16_t
RnaLayerContext::encodeState(double value, nvm::OpCost &cost) const
{
    RAPIDNN_ASSERT(_stateEncodingAm.has_value(),
                   "encodeState on a non-recurrent layer");
    return static_cast<uint16_t>(
        _stateEncodingAm->lookupRow(value, cost));
}

uint16_t
RnaLayerContext::poolMax(const std::vector<uint16_t> &codes,
                         const nvm::CostModel &model, nvm::OpCost &cost)
{
    RAPIDNN_ASSERT(!codes.empty(), "poolMax on empty window");
    // The pooling AM is loaded with the window's encoded values, then a
    // single MAX search returns the winner. Codes are order-preserving
    // (sorted codebooks), so max code == max value.
    nvm::Ndcam cam(16, model);
    std::vector<uint32_t> keys(codes.begin(), codes.end());
    cam.load(keys, cost);
    const size_t row = cam.searchMax(cost);
    return codes[row];
}

uint16_t
RnaLayerContext::poolMaxFast(const uint16_t *codes, size_t count,
                             const nvm::CostModel &model,
                             nvm::OpCost &cost)
{
    RAPIDNN_ASSERT(count > 0, "poolMax on empty window");
    // Charge exactly what poolMax's Ndcam would: one load of `count`
    // keys, then one MAX search over `count` 16-bit rows.
    cost += {1, model.camWriteEnergy * static_cast<double>(count)};
    cost += model.camSearch(count, 16);
    // First occurrence of the maximum, matching std::max_element.
    uint16_t best = codes[0];
    for (size_t i = 1; i < count; ++i)
        if (codes[i] > best)
            best = codes[i];
    return best;
}

void
RnaLayerContext::prepareWorkspace(Workspace &ws) const
{
    for (const auto &engine : _engines)
        ws.accum.ensure(engine.weightEntries(), engine.inputEntries());
    if (_stateEngine)
        ws.accum.ensure(_stateEngine->weightEntries(),
                        _stateEngine->inputEntries());
    if (_layer.kind == composer::RLayerKind::Conv) {
        const size_t windowMax = _layer.weightCodes[0].size();
        if (ws.gatherW.size() < windowMax)
            ws.gatherW.resize(windowMax);
        if (ws.gatherX.size() < windowMax)
            ws.gatherX.resize(windowMax);
    } else if (_layer.kind == composer::RLayerKind::Recurrent) {
        const size_t hidden = _layer.outCount;
        if (ws.hCodes.size() < hidden) {
            ws.hCodes.resize(hidden);
            ws.hNext.resize(hidden);
            ws.hRaw.resize(hidden);
            ws.hRawNext.resize(hidden);
        }
    }
}

void
RnaLayerContext::prepareScratch(IntraOpScratch &scratch) const
{
    for (const auto &engine : _engines)
        scratch.accum.ensure(engine.weightEntries(),
                             engine.inputEntries());
    if (_stateEngine)
        scratch.accum.ensure(_stateEngine->weightEntries(),
                             _stateEngine->inputEntries());
    if (_layer.kind == composer::RLayerKind::Conv) {
        const size_t windowMax = _layer.weightCodes[0].size();
        if (scratch.gatherW.size() < windowMax)
            scratch.gatherW.resize(windowMax);
        if (scratch.gatherX.size() < windowMax)
            scratch.gatherX.resize(windowMax);
    }
}

size_t
RnaLayerContext::productRows() const
{
    size_t rows = 0;
    for (const auto &table : _layer.productTables)
        rows += table.size();
    return rows;
}

} // namespace rapidnn::rna
