#include "rna/accumulation.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/check.hh"

namespace rapidnn::rna {

AccumulationEngine::AccumulationEngine(
    const Array<double> &productTable, size_t w, size_t u,
    const nvm::CostModel &model, AccumFormat format)
    : _w(w), _u(u), _model(model), _format(format)
{
    RAPIDNN_ASSERT(productTable.size() == w * u,
                   "product table size ", productTable.size(),
                   " != w*u = ", w * u);
    _fixedProducts.resize(productTable.size());
    for (size_t i = 0; i < productTable.size(); ++i)
        _fixedProducts[i] = _format.toFixed(productTable[i]);

    // The kernel paths fuse (w, u) into key = (w << shift) | u so the
    // pair key is one shift+or per edge. When u is already a power of
    // two the padded layout coincides with the row-major table;
    // otherwise build a strided copy indexed by key.
    _shift = u <= 1 ? 0 : static_cast<uint32_t>(ceilLog2(u));
    if ((size_t(1) << _shift) == u || u == 0) {
        _padded = _fixedProducts.data();
    } else {
        _fixedPadded.assign(_w << _shift, 0);
        for (size_t wc = 0; wc < _w; ++wc)
            for (size_t uc = 0; uc < _u; ++uc)
                _fixedPadded[(wc << _shift) | uc] =
                    _fixedProducts[wc * _u + uc];
        _padded = _fixedPadded.data();
    }

    // Half-width product table for the batched-lanes tally. Products
    // at the default 16 fraction bits fit int32 unless a weight x
    // activation product exceeds +/-32768.0, so the narrow table
    // almost always exists; sign-extension restores the exact wide
    // value, keeping batched sums bit-identical to the wide path.
    const size_t cells = _w << _shift;
    bool fits32 = true;
    for (size_t i = 0; i < cells && fits32; ++i)
        fits32 = _padded[i] >= INT32_MIN && _padded[i] <= INT32_MAX;
    if (fits32 && cells > 0) {
        _fixedPadded32.resize(cells);
        for (size_t i = 0; i < cells; ++i)
            _fixedPadded32[i] = static_cast<int32_t>(_padded[i]);
        _padded32 = _fixedPadded32.data();
    }
}

AccumResult
AccumulationEngine::run(const std::vector<uint16_t> &weightCodes,
                        const std::vector<uint16_t> &inputCodes,
                        double bias) const
{
    RAPIDNN_ASSERT(weightCodes.size() == inputCodes.size(),
                   "weight/input code vectors must be parallel");
    const size_t fanIn = weightCodes.size();

    AccumResult result;

    // --- Parallel counting (Section 4.1.1) ---
    // One buffer per distinct weight; every cycle one index pops from
    // each buffer, so the phase takes as long as the fullest buffer.
    std::vector<uint32_t> counters(_w * _u, 0);
    std::vector<uint32_t> bufferDepth(_w, 0);
    // Codes are validated against the table dimensions when the layer
    // context is configured, not per edge here.
    for (size_t i = 0; i < fanIn; ++i) {
        const uint16_t wc = weightCodes[i];
        const uint16_t uc = inputCodes[i];
        ++counters[size_t(wc) * _u + uc];
        ++bufferDepth[wc];
    }
    result.countingCycles = bufferDepth.empty()
        ? 0
        : *std::max_element(bufferDepth.begin(), bufferDepth.end());
    result.cost.counting.cycles = result.countingCycles;
    result.cost.counting.energy =
        _model.counterIncrementEnergy * static_cast<double>(fanIn);

    // --- Shift-and-add scheduling (Section 4.1.1) ---
    // Each nonzero counter contributes its product shifted by the
    // signed-digit decomposition of the count (CSD subsumes the paper's
    // run-of-ones rewrite, e.g. 15 -> 16 - 1).
    std::vector<int64_t> addends;
    for (size_t cell = 0; cell < counters.size(); ++cell) {
        const uint32_t count = counters[cell];
        if (count == 0)
            continue;
        ++result.distinctProducts;
        const int64_t product = _fixedProducts[cell];
        for (const ShiftTerm &term : csdDecompose(count)) {
            const int64_t shifted = product << term.shift;
            addends.push_back(term.negative ? -shifted : shifted);
        }
    }
    result.addends = addends.size();

    // One crossbar row read per distinct product used.
    result.cost.fetch.cycles = result.distinctProducts;
    result.cost.fetch.energy = _model.crossbarReadEnergy
        * static_cast<double>(result.distinctProducts);

    // Bias joins the reduction as one extra addend.
    addends.push_back(_format.toFixed(bias));

    // --- In-memory carry-save adder tree (Section 4.1.2) ---
    const int64_t fixedSum = nvm::CrossbarArray::addMany(
        addends, _format.accumulatorBits, _model, result.cost.adder);
    result.value = _format.toReal(fixedSum);
    return result;
}

AccumResult
AccumulationEngine::run(const uint16_t *weightCodes,
                        const uint16_t *inputCodes, size_t fanIn,
                        double bias, AccumScratch &scratch) const
{
    scratch.ensure(_w, _u);
    AccumResult result;

    // Parallel counting over the all-zero grid; record touched cells and
    // weight buffers so only they need resetting afterwards, and keep a
    // running max instead of scanning every buffer.
    scratch.touchedCells.clear();
    scratch.touchedWeights.clear();
    uint32_t maxDepth = 0;
    for (size_t i = 0; i < fanIn; ++i) {
        const uint16_t wc = weightCodes[i];
        const size_t cell = size_t(wc) * _u + inputCodes[i];
        if (scratch.counters[cell]++ == 0)
            scratch.touchedCells.push_back(static_cast<uint32_t>(cell));
        if (scratch.bufferDepth[wc]++ == 0)
            scratch.touchedWeights.push_back(wc);
        maxDepth = std::max(maxDepth, scratch.bufferDepth[wc]);
    }
    result.countingCycles = maxDepth;
    result.cost.counting.cycles = result.countingCycles;
    result.cost.counting.energy =
        _model.counterIncrementEnergy * static_cast<double>(fanIn);

    // Shift-and-add terms are summed inline: the fixed-point total is
    // order-independent, so no addend list needs materializing.
    int64_t fixedSum = 0;
    size_t addends = 0;
    for (const uint32_t cell : scratch.touchedCells) {
        const uint32_t count = scratch.counters[cell];
        scratch.counters[cell] = 0;
        const int64_t product = _fixedProducts[cell];
        csdForEach(count, [&](ShiftTerm term) {
            const int64_t shifted = product << term.shift;
            fixedSum += term.negative ? -shifted : shifted;
            ++addends;
        });
    }
    result.distinctProducts = scratch.touchedCells.size();
    result.addends = addends;
    for (const uint16_t wc : scratch.touchedWeights)
        scratch.bufferDepth[wc] = 0;

    result.cost.fetch.cycles = result.distinctProducts;
    result.cost.fetch.energy = _model.crossbarReadEnergy
        * static_cast<double>(result.distinctProducts);

    // Bias joins the reduction as one extra addend, exactly as the
    // vector path pushes it before addMany.
    fixedSum += _format.toFixed(bias);
    nvm::CrossbarArray::addManyCost(result.addends + 1,
                                    _format.accumulatorBits, _model,
                                    result.cost.adder);
    result.value = _format.toReal(fixedSum);
    return result;
}

void
AccumScratch::growCsdTerms(size_t maxCount)
{
    size_t c = csdTerms.size();
    csdTerms.resize(maxCount + 1);
    if (c == 0)
        csdTerms[c++] = 0;  // count 0 contributes no terms
    for (; c <= maxCount; ++c) {
        int32_t terms = 0;
        csdForEach(c, [&](ShiftTerm) { ++terms; });
        csdTerms[c] = terms;
    }
}

const nvm::OpCost &
AccumScratch::adderCostFor(size_t addendCount, size_t resultBits,
                           const nvm::CostModel &model)
{
    if (resultBits != _adderResultBits
        || model.csaStageCycles != _adderCsaStageCycles
        || model.carryPropagateCyclesPerBit != _adderCarryCycles
        || model.norEnergyPerBit != _adderNorEnergy) {
        _adderCost.clear();
        _adderCostValid.clear();
        _adderResultBits = resultBits;
        _adderCsaStageCycles = model.csaStageCycles;
        _adderCarryCycles = model.carryPropagateCyclesPerBit;
        _adderNorEnergy = model.norEnergyPerBit;
    }
    if (_adderCost.size() <= addendCount) {
        _adderCost.resize(addendCount + 1);
        _adderCostValid.resize(addendCount + 1, 0);
    }
    if (!_adderCostValid[addendCount]) {
        nvm::CrossbarArray::addManyCost(addendCount, resultBits, model,
                                        _adderCost[addendCount]);
        _adderCostValid[addendCount] = 1;
    }
    return _adderCost[addendCount];
}

/** Overload pair so the key-type template below picks the matching
 *  gather-sum kernel. */
namespace {

inline int64_t
gatherSumKeys(const simd::KernelOps &ops, const int64_t *table,
              const uint16_t *keys, size_t n)
{
    return ops.gatherSum16(table, keys, n);
}

inline int64_t
gatherSumKeys(const simd::KernelOps &ops, const int64_t *table,
              const uint32_t *keys, size_t n)
{
    return ops.gatherSum32(table, keys, n);
}

} // namespace

/**
 * Shared tally + reduction over precomputed pair keys. The counter
 * grid is the power-of-two padded [w << shift] key space; cells are
 * renumbered relative to the row-major path but carry the identical
 * (w, u) multiset of counts, so every AccumResult field matches the
 * pointer overload bit for bit:
 *
 *  - value: per cell the CSD terms of its count sum to exactly
 *    product * count, so the whole reduction telescopes to
 *    sum(padded[key_i]) — one order-independent int64 gather-sum
 *    through the kernel table, no histogram involved.
 *  - addends/distinctProducts: the tally is split into a pure counter
 *    increment pass and a combined read-out/reset pass that charges
 *    csdTerms[count] per touched cell — the keys array doubles as the
 *    reset list (a cell's first read-out zeroes it, so duplicate keys
 *    see count 0 and contribute nothing), so no touched-cell walk is
 *    needed and both passes are branch-predictable streams.
 *  - countingCycles: max final buffer depth — a pure function of the
 *    weight codes, taken from the caller's precomputed hint when
 *    given, otherwise recomputed from keys >> shift (depths only
 *    grow, so the running max equals the final max).
 */
template <typename Key>
AccumResult
AccumulationEngine::runOverKeys(const simd::KernelOps &ops,
                                const Key *keys, size_t fanIn,
                                double bias, AccumScratch &scratch,
                                const uint32_t *countingCycles) const
{
    AccumResult result;

    int64_t fixedSum = gatherSumKeys(ops, _padded, keys, fanIn);

    const int32_t *terms = scratch.csdTerms.data();
    uint32_t *counters = scratch.counters.data();
    int64_t addends = 0;
    size_t distinct = 0;
    size_t i = 0;
    for (; i + 4 <= fanIn; i += 4) {
        ++counters[keys[i]];
        ++counters[keys[i + 1]];
        ++counters[keys[i + 2]];
        ++counters[keys[i + 3]];
    }
    for (; i < fanIn; ++i)
        ++counters[keys[i]];
    for (i = 0; i < fanIn; ++i) {
        const uint32_t k = keys[i];
        const uint32_t c = counters[k];
        counters[k] = 0;
        addends += terms[c];
        distinct += (c != 0);
    }
    result.distinctProducts = distinct;
    result.addends = static_cast<size_t>(addends);

    uint32_t maxDepth = 0;
    if (countingCycles != nullptr) {
        maxDepth = *countingCycles;
    } else {
        uint32_t *depth = scratch.bufferDepth.data();
        for (size_t i = 0; i < fanIn; ++i)
            maxDepth = std::max(maxDepth, ++depth[keys[i] >> _shift]);
        for (size_t i = 0; i < fanIn; ++i)
            depth[keys[i] >> _shift] = 0;
    }
    result.countingCycles = maxDepth;
    result.cost.counting.cycles = result.countingCycles;
    result.cost.counting.energy =
        _model.counterIncrementEnergy * static_cast<double>(fanIn);

    result.cost.fetch.cycles = result.distinctProducts;
    result.cost.fetch.energy = _model.crossbarReadEnergy
        * static_cast<double>(result.distinctProducts);

    fixedSum += _format.toFixed(bias);
    result.cost.adder = scratch.adderCostFor(
        result.addends + 1, _format.accumulatorBits, _model);
    result.value = _format.toReal(fixedSum);
    return result;
}

AccumResult
AccumulationEngine::runPacked(const simd::KernelOps &ops,
                              const uint8_t *weightCodes,
                              const uint8_t *inputCodes, size_t fanIn,
                              double bias, AccumScratch &scratch,
                              const uint32_t *countingCycles) const
{
    RAPIDNN_ASSERT(packable(), "runPacked on a >256-entry codebook");
    scratch.ensurePadded(_w, _shift, fanIn);
    ops.pairKeys8(weightCodes, inputCodes, fanIn, _shift,
                  scratch.keys.data());
    return runOverKeys(ops, scratch.keys.data(), fanIn, bias, scratch,
                       countingCycles);
}

AccumResult
AccumulationEngine::runPrekeyed(const simd::KernelOps &ops,
                                const uint16_t *keys, size_t fanIn,
                                double bias, AccumScratch &scratch,
                                const uint32_t *countingCycles) const
{
    RAPIDNN_ASSERT(packable(), "runPrekeyed on a >256-entry codebook");
    return runOverKeys(ops, keys, fanIn, bias, scratch,
                       countingCycles);
}

void
AccumulationEngine::runPrekeyedLanes(const simd::KernelOps &,
                                     const uint16_t *keys,
                                     size_t keyStride, size_t lanes,
                                     size_t fanIn, double bias,
                                     AccumScratch &scratch,
                                     const uint32_t *countingCycles,
                                     AccumResult *results) const
{
    RAPIDNN_ASSERT(packable(),
                   "runPrekeyedLanes on a >256-entry codebook");

    // Counting cycles are a pure function of the shared weight column
    // (keys >> shift is the same stripe in every lane), so one value
    // serves the whole batch: the caller's hoisted hint, or one
    // recomputation from lane 0.
    uint32_t cc;
    if (countingCycles != nullptr) {
        cc = *countingCycles;
    } else {
        uint32_t *depth = scratch.bufferDepth.data();
        uint32_t maxDepth = 0;
        for (size_t i = 0; i < fanIn; ++i)
            maxDepth = std::max(maxDepth, ++depth[keys[i] >> _shift]);
        for (size_t i = 0; i < fanIn; ++i)
            depth[keys[i] >> _shift] = 0;
        cc = maxDepth;
    }

    const int64_t fixedBias = _format.toFixed(bias);
    const Energy countingEnergy =
        _model.counterIncrementEnergy * static_cast<double>(fanIn);
    const int32_t *terms = scratch.csdTerms.data();

    // Per-lane tally with the value sum fused into the read-out: a
    // cell's first read-out sees its full count c and contributes
    // product * c (the exact sum of its CSD terms — see runOverKeys);
    // duplicate keys see the zeroed cell and contribute 0 addends and
    // 0 value. int64 addition is order-independent, so the sum equals
    // the gather telescope bit for bit, with no separate gather pass.
    auto tallyLanes = [&](auto *counters, const auto *padded) {
        for (size_t L = 0; L < lanes; ++L) {
            const uint16_t *k = keys + L * keyStride;
            size_t i = 0;
            for (; i + 4 <= fanIn; i += 4) {
                ++counters[k[i]];
                ++counters[k[i + 1]];
                ++counters[k[i + 2]];
                ++counters[k[i + 3]];
            }
            for (; i < fanIn; ++i)
                ++counters[k[i]];
            int64_t fixedSum = 0;
            int64_t addends = 0;
            size_t distinct = 0;
            for (i = 0; i < fanIn; ++i) {
                const uint32_t key = k[i];
                const uint32_t c = counters[key];
                counters[key] = 0;
                fixedSum += static_cast<int64_t>(padded[key])
                          * static_cast<int64_t>(c);
                addends += terms[c];
                distinct += (c != 0);
            }
            AccumResult &r = results[L];
            r.value = _format.toReal(fixedSum + fixedBias);
            r.distinctProducts = distinct;
            r.addends = static_cast<size_t>(addends);
            r.countingCycles = cc;
            r.cost.counting.cycles = cc;
            r.cost.counting.energy = countingEnergy;
            r.cost.fetch.cycles = distinct;
            r.cost.fetch.energy = _model.crossbarReadEnergy
                * static_cast<double>(distinct);
            r.cost.adder = scratch.adderCostFor(
                static_cast<size_t>(addends) + 1,
                _format.accumulatorBits, _model);
        }
    };

    // Narrow grids where exactness allows (uint16 counts need
    // fanIn <= 65535; int32 products need the table built), so the
    // counters + products working set stays L1-resident across lanes.
    if (fanIn <= 0xFFFF) {
        if (_padded32 != nullptr)
            tallyLanes(scratch.countersNarrow.data(), _padded32);
        else
            tallyLanes(scratch.countersNarrow.data(), _padded);
    } else {
        if (_padded32 != nullptr)
            tallyLanes(scratch.counters.data(), _padded32);
        else
            tallyLanes(scratch.counters.data(), _padded);
    }
}

AccumResult
AccumulationEngine::runKeyed(const simd::KernelOps &ops,
                             const uint16_t *weightCodes,
                             const uint16_t *inputCodes, size_t fanIn,
                             double bias, AccumScratch &scratch,
                             const uint32_t *countingCycles) const
{
    scratch.ensurePadded(_w, _shift, fanIn);
    ops.pairKeys16(weightCodes, inputCodes, fanIn, _shift,
                   scratch.keysWide.data());
    return runOverKeys(ops, scratch.keysWide.data(), fanIn, bias,
                       scratch, countingCycles);
}

namespace {

template <typename Code>
uint32_t
weightDepthMax(const Code *weightCodes, size_t fanIn, size_t w)
{
    std::vector<uint32_t> depth(w, 0);
    uint32_t maxDepth = 0;
    for (size_t i = 0; i < fanIn; ++i)
        maxDepth = std::max(maxDepth, ++depth[weightCodes[i]]);
    return maxDepth;
}

} // namespace

uint32_t
AccumulationEngine::weightCountingCycles(const uint8_t *weightCodes,
                                         size_t fanIn) const
{
    return weightDepthMax(weightCodes, fanIn, _w);
}

uint32_t
AccumulationEngine::weightCountingCycles(const uint16_t *weightCodes,
                                         size_t fanIn) const
{
    return weightDepthMax(weightCodes, fanIn, _w);
}

uint32_t
AccumulationEngine::weightCountingCycles(const uint8_t *weightCodes,
                                         size_t fanIn,
                                         AccumScratch &scratch) const
{
    if (scratch.bufferDepth.size() < _w)
        scratch.bufferDepth.ensureZeroed(_w);
    uint32_t *depth = scratch.bufferDepth.data();
    uint32_t maxDepth = 0;
    for (size_t i = 0; i < fanIn; ++i)
        maxDepth = std::max(maxDepth, ++depth[weightCodes[i]]);
    for (size_t i = 0; i < fanIn; ++i)
        depth[weightCodes[i]] = 0;
    return maxDepth;
}

} // namespace rapidnn::rna
