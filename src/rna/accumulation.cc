#include "rna/accumulation.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/check.hh"

namespace rapidnn::rna {

AccumulationEngine::AccumulationEngine(
    const Array<double> &productTable, size_t w, size_t u,
    const nvm::CostModel &model, AccumFormat format)
    : _w(w), _u(u), _model(model), _format(format)
{
    RAPIDNN_ASSERT(productTable.size() == w * u,
                   "product table size ", productTable.size(),
                   " != w*u = ", w * u);
    _fixedProducts.resize(productTable.size());
    for (size_t i = 0; i < productTable.size(); ++i)
        _fixedProducts[i] = _format.toFixed(productTable[i]);
}

AccumResult
AccumulationEngine::run(const std::vector<uint16_t> &weightCodes,
                        const std::vector<uint16_t> &inputCodes,
                        double bias) const
{
    RAPIDNN_ASSERT(weightCodes.size() == inputCodes.size(),
                   "weight/input code vectors must be parallel");
    const size_t fanIn = weightCodes.size();

    AccumResult result;

    // --- Parallel counting (Section 4.1.1) ---
    // One buffer per distinct weight; every cycle one index pops from
    // each buffer, so the phase takes as long as the fullest buffer.
    std::vector<uint32_t> counters(_w * _u, 0);
    std::vector<uint32_t> bufferDepth(_w, 0);
    // Codes are validated against the table dimensions when the layer
    // context is configured, not per edge here.
    for (size_t i = 0; i < fanIn; ++i) {
        const uint16_t wc = weightCodes[i];
        const uint16_t uc = inputCodes[i];
        ++counters[size_t(wc) * _u + uc];
        ++bufferDepth[wc];
    }
    result.countingCycles = bufferDepth.empty()
        ? 0
        : *std::max_element(bufferDepth.begin(), bufferDepth.end());
    result.cost.counting.cycles = result.countingCycles;
    result.cost.counting.energy =
        _model.counterIncrementEnergy * static_cast<double>(fanIn);

    // --- Shift-and-add scheduling (Section 4.1.1) ---
    // Each nonzero counter contributes its product shifted by the
    // signed-digit decomposition of the count (CSD subsumes the paper's
    // run-of-ones rewrite, e.g. 15 -> 16 - 1).
    std::vector<int64_t> addends;
    for (size_t cell = 0; cell < counters.size(); ++cell) {
        const uint32_t count = counters[cell];
        if (count == 0)
            continue;
        ++result.distinctProducts;
        const int64_t product = _fixedProducts[cell];
        for (const ShiftTerm &term : csdDecompose(count)) {
            const int64_t shifted = product << term.shift;
            addends.push_back(term.negative ? -shifted : shifted);
        }
    }
    result.addends = addends.size();

    // One crossbar row read per distinct product used.
    result.cost.fetch.cycles = result.distinctProducts;
    result.cost.fetch.energy = _model.crossbarReadEnergy
        * static_cast<double>(result.distinctProducts);

    // Bias joins the reduction as one extra addend.
    addends.push_back(_format.toFixed(bias));

    // --- In-memory carry-save adder tree (Section 4.1.2) ---
    const int64_t fixedSum = nvm::CrossbarArray::addMany(
        addends, _format.accumulatorBits, _model, result.cost.adder);
    result.value = _format.toReal(fixedSum);
    return result;
}

AccumResult
AccumulationEngine::run(const uint16_t *weightCodes,
                        const uint16_t *inputCodes, size_t fanIn,
                        double bias, AccumScratch &scratch) const
{
    scratch.ensure(_w, _u);
    AccumResult result;

    // Parallel counting over the all-zero grid; record touched cells and
    // weight buffers so only they need resetting afterwards, and keep a
    // running max instead of scanning every buffer.
    scratch.touchedCells.clear();
    scratch.touchedWeights.clear();
    uint32_t maxDepth = 0;
    for (size_t i = 0; i < fanIn; ++i) {
        const uint16_t wc = weightCodes[i];
        const size_t cell = size_t(wc) * _u + inputCodes[i];
        if (scratch.counters[cell]++ == 0)
            scratch.touchedCells.push_back(static_cast<uint32_t>(cell));
        if (scratch.bufferDepth[wc]++ == 0)
            scratch.touchedWeights.push_back(wc);
        maxDepth = std::max(maxDepth, scratch.bufferDepth[wc]);
    }
    result.countingCycles = maxDepth;
    result.cost.counting.cycles = result.countingCycles;
    result.cost.counting.energy =
        _model.counterIncrementEnergy * static_cast<double>(fanIn);

    // Shift-and-add terms are summed inline: the fixed-point total is
    // order-independent, so no addend list needs materializing.
    int64_t fixedSum = 0;
    size_t addends = 0;
    for (const uint32_t cell : scratch.touchedCells) {
        const uint32_t count = scratch.counters[cell];
        scratch.counters[cell] = 0;
        const int64_t product = _fixedProducts[cell];
        csdForEach(count, [&](ShiftTerm term) {
            const int64_t shifted = product << term.shift;
            fixedSum += term.negative ? -shifted : shifted;
            ++addends;
        });
    }
    result.distinctProducts = scratch.touchedCells.size();
    result.addends = addends;
    for (const uint16_t wc : scratch.touchedWeights)
        scratch.bufferDepth[wc] = 0;

    result.cost.fetch.cycles = result.distinctProducts;
    result.cost.fetch.energy = _model.crossbarReadEnergy
        * static_cast<double>(result.distinctProducts);

    // Bias joins the reduction as one extra addend, exactly as the
    // vector path pushes it before addMany.
    fixedSum += _format.toFixed(bias);
    nvm::CrossbarArray::addManyCost(result.addends + 1,
                                    _format.accumulatorBits, _model,
                                    result.cost.adder);
    result.value = _format.toReal(fixedSum);
    return result;
}

} // namespace rapidnn::rna
