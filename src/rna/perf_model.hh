/**
 * @file
 * Analytic RAPIDNN performance/energy model over layer shapes.
 *
 * The functional chip simulator (rna/chip.hh) executes real
 * reinterpreted models; that is intractable for the published ImageNet
 * topologies (billions of MACs per inference), which the paper's
 * Figures 15/16 and Table 4 need. This model computes the same
 * quantities from layer shapes using closed-form versions of the
 * per-neuron schedules; tests validate it against the functional
 * simulator on small networks.
 */

#ifndef RAPIDNN_RNA_PERF_MODEL_HH
#define RAPIDNN_RNA_PERF_MODEL_HH

#include "nn/topology.hh"
#include "rna/chip.hh"
#include "rna/perf_report.hh"

namespace rapidnn::rna {

/** Codebook configuration the analytic model assumes. */
struct PerfModelConfig
{
    size_t weightEntries = 64;   //!< w
    size_t inputEntries = 64;    //!< u
    size_t activationRows = 64;  //!< q
    size_t accumulatorBits = 32; //!< N
    /** Imbalance margin on parallel counting (max vs mean bucket). */
    double countingBalanceFactor = 1.2;
};

/**
 * Closed-form RAPIDNN model: per-layer neuron schedules aggregated
 * with wave scheduling and layer pipelining, mirroring Chip::infer.
 */
class RnaPerfModel
{
  public:
    RnaPerfModel(ChipConfig chip, PerfModelConfig model)
        : _chip(chip), _model(model)
    {
    }

    /** Estimate one inference of a network shape. */
    PerfReport estimate(const nn::NetworkShape &shape) const;

    /** Per-neuron cycle estimate for a given fan-in (test hook). */
    uint64_t neuronCycles(size_t fanIn) const;

    /** Steady-state initiation interval of an RNA streaming neurons of
     *  a given fan-in (throughput, not latency). */
    uint64_t neuronInterval(size_t fanIn) const;

    /** Per-neuron energy estimate for a given fan-in (test hook). */
    Energy neuronEnergy(size_t fanIn) const;

    /** Throughput density in GOPS/mm^2 at peak utilization
     *  (Section 5.5 / Table 4). */
    double gopsPerMm2(const nn::NetworkShape &shape) const;

    /** Power efficiency in GOPS/W (Section 5.5). */
    double gopsPerWatt(const nn::NetworkShape &shape) const;

    const ChipConfig &chip() const { return _chip; }
    const PerfModelConfig &model() const { return _model; }

    /**
     * Analytic accelerator table storage for a network shape at this
     * codebook configuration: encoded weights at log2(w) bits plus
     * product/activation/encoding tables per distinct RNA table set
     * (the Figure 12 "memory usage" metric at paper scale).
     */
    size_t memoryBytes(const nn::NetworkShape &shape) const;

  private:
    ChipConfig _chip;
    PerfModelConfig _model;

    /** Expected addend count entering the adder tree. */
    size_t expectedAddends(size_t fanIn) const;
};

} // namespace rapidnn::rna

#endif // RAPIDNN_RNA_PERF_MODEL_HH
