#include "rna/perf_report.hh"

namespace rapidnn::rna {

CategoryCost
PerfReport::category(const std::string &name) const
{
    for (const auto &c : breakdown)
        if (c.name == name)
            return c;
    return {name, Time{}, Energy{}};
}

void
PerfReport::addCategory(const std::string &name, Time t, Energy e)
{
    for (auto &c : breakdown) {
        if (c.name == name) {
            c.time += t;
            c.energy += e;
            return;
        }
    }
    breakdown.push_back({name, t, e});
}

} // namespace rapidnn::rna
