#include "rna/perf_report.hh"

#include <algorithm>

namespace rapidnn::rna {

CategoryCost
PerfReport::category(const std::string &name) const
{
    for (const auto &c : breakdown)
        if (c.name == name)
            return c;
    return {name, Time{}, Energy{}};
}

void
PerfReport::merge(const PerfReport &o)
{
    latency += o.latency;
    stageTime = std::max(stageTime, o.stageTime);
    energy += o.energy;
    totalOps += o.totalOps;
    inferences += o.inferences > 0 ? o.inferences : 1;
    for (const auto &cat : o.breakdown)
        addCategory(cat.name, cat.time, cat.energy);
}

void
PerfReport::addCategory(const std::string &name, Time t, Energy e)
{
    for (auto &c : breakdown) {
        if (c.name == name) {
            c.time += t;
            c.energy += e;
            return;
        }
    }
    breakdown.push_back({name, t, e});
}

} // namespace rapidnn::rna
