/**
 * @file
 * The RAPIDNN controller's mapping plan (paper Section 4.3).
 *
 * The controller "maps the computation of different DNN layers into
 * RNA blocks", assigns per-tile configuration registers, sizes the
 * input FIFOs (whose depth is set by the largest layer's fan-in),
 * routes residual skip values and recurrent feedback, and sequences
 * the layer pipeline. This module makes that plan explicit and
 * inspectable: given a reinterpreted model and a chip configuration it
 * produces per-layer block assignments, tile ranges, wave counts,
 * FIFO depths and transfer schedules, with validation.
 */

#ifndef RAPIDNN_RNA_CONTROLLER_HH
#define RAPIDNN_RNA_CONTROLLER_HH

#include <string>
#include <vector>

#include "composer/reinterpreted_model.hh"
#include "rna/chip.hh"

namespace rapidnn::rna {

/** How a reinterpreted layer maps onto the fabric. */
struct LayerAssignment
{
    std::string description;      //!< e.g. "dense(784->512)"
    composer::RLayerKind kind;
    size_t neurons = 0;           //!< logical neurons to evaluate
    size_t rnaBlocks = 0;         //!< physical blocks assigned
    size_t waves = 1;             //!< sequential passes over blocks
    size_t firstTile = 0;         //!< tile range [firstTile, lastTile]
    size_t lastTile = 0;
    size_t fifoDepth = 0;         //!< input FIFO entries per block
    size_t broadcastBits = 0;     //!< encoded bits leaving the layer
    bool feedbackLoop = false;    //!< recurrent self-route
    bool skipRoute = false;       //!< residual skip FIFO parked
    size_t depth = 0;             //!< nesting depth (residual inner)
};

/** The whole mapping plan. */
struct MappingPlan
{
    std::vector<LayerAssignment> assignments;
    size_t totalRnasUsed = 0;     //!< peak concurrent block demand
    size_t tilesUsed = 0;
    size_t chipsUsed = 0;
    size_t maxFifoDepth = 0;      //!< controller FIFO sizing
    double utilization = 0.0;     //!< peak blocks / available blocks
    bool fits = false;            //!< true when no layer needs waves

    /** Multi-line human-readable rendering. */
    std::string describe() const;
};

/**
 * The controller: plans layer-to-block mappings for a chip
 * configuration.
 */
class Controller
{
  public:
    explicit Controller(ChipConfig config) : _config(config) {}

    /** Build the mapping plan for a composed model. */
    MappingPlan plan(const composer::ReinterpretedModel &model) const;

    const ChipConfig &config() const { return _config; }

  private:
    ChipConfig _config;

    void planLayers(const std::vector<composer::RLayer> &layers,
                    size_t depth, size_t &nextTileSlot,
                    MappingPlan &out) const;
};

} // namespace rapidnn::rna

#endif // RAPIDNN_RNA_CONTROLLER_HH
