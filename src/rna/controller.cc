#include "rna/controller.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/bitops.hh"
#include "common/check.hh"

namespace rapidnn::rna {

using composer::RLayer;
using composer::RLayerKind;

namespace {

std::string
layerDescription(const RLayer &layer)
{
    std::ostringstream os;
    switch (layer.kind) {
      case RLayerKind::Dense:
        os << "dense(" << layer.inCount << "->" << layer.outCount
           << ")";
        break;
      case RLayerKind::Conv:
        os << "conv(" << layer.inChannels << "->" << layer.outCount
           << "," << layer.kernel << "x" << layer.kernel << ")";
        break;
      case RLayerKind::MaxPool:
        os << "maxpool(" << layer.poolWindow << ")";
        break;
      case RLayerKind::AvgPool:
        os << "avgpool(" << layer.poolWindow << ")";
        break;
      case RLayerKind::Flatten:
        os << "flatten";
        break;
      case RLayerKind::Residual:
        os << "residual{" << layer.inner.size() << "}";
        break;
      case RLayerKind::Recurrent:
        os << "elman(" << layer.inCount << "x" << layer.steps << "->"
           << layer.outCount << ")";
        break;
    }
    return os.str();
}

/** Logical neuron evaluations a layer performs per inference. The
 *  conv spatial extent is unknown without an input shape, so the plan
 *  counts distinct table sets (channels); waves at run time follow the
 *  actual feature-map size. */
size_t
logicalNeurons(const RLayer &layer)
{
    switch (layer.kind) {
      case RLayerKind::Dense:
      case RLayerKind::Conv:
      case RLayerKind::Recurrent:
        return layer.outCount;
      case RLayerKind::MaxPool:
      case RLayerKind::AvgPool:
      case RLayerKind::Flatten:
      case RLayerKind::Residual:
        return 0;
    }
    return 0;
}

} // namespace

void
Controller::planLayers(const std::vector<RLayer> &layers, size_t depth,
                       size_t &nextTileSlot, MappingPlan &out) const
{
    const size_t rnasPerTile = _config.cost.rnasPerTile;

    for (const RLayer &layer : layers) {
        LayerAssignment a;
        a.description = layerDescription(layer);
        a.kind = layer.kind;
        a.depth = depth;

        if (layer.kind == RLayerKind::Residual) {
            a.skipRoute = true;
            a.fifoDepth = 1;  // the skip value parks one entry deep
            out.assignments.push_back(a);
            planLayers(layer.inner, depth + 1, nextTileSlot, out);
            continue;
        }

        a.neurons = logicalNeurons(layer);
        if (a.neurons > 0) {
            const size_t available = _config.totalRnas();
            a.rnaBlocks = std::min(a.neurons, available);
            a.waves = (a.neurons + available - 1) / available;
            a.fifoDepth = layer.inCount;
            if (layer.kind == RLayerKind::Recurrent) {
                a.feedbackLoop = true;
                // The FIFO also holds the fed-back hidden state.
                a.fifoDepth += layer.outCount;
            }
            if (!layer.outputEncoder.empty())
                a.broadcastBits =
                    indexBits(layer.outputEncoder.entries());

            a.firstTile = nextTileSlot / rnasPerTile;
            nextTileSlot += a.rnaBlocks;
            a.lastTile = (nextTileSlot - 1) / rnasPerTile;

            out.totalRnasUsed += a.rnaBlocks;
            out.maxFifoDepth = std::max(out.maxFifoDepth, a.fifoDepth);
        } else if (layer.kind == RLayerKind::MaxPool ||
                   layer.kind == RLayerKind::AvgPool) {
            // Pooling reuses the upstream layer's encoding AM blocks.
            a.fifoDepth = layer.poolWindow * layer.poolWindow;
            out.maxFifoDepth = std::max(out.maxFifoDepth, a.fifoDepth);
        }
        out.assignments.push_back(a);
    }
}

MappingPlan
Controller::plan(const composer::ReinterpretedModel &model) const
{
    RAPIDNN_ASSERT(!model.layers().empty(), "planning an empty model");

    MappingPlan out;
    size_t nextTileSlot = 0;
    planLayers(model.layers(), 0, nextTileSlot, out);

    const size_t rnasPerTile = _config.cost.rnasPerTile;
    const size_t rnasPerChip = rnasPerTile * _config.cost.tilesPerChip;
    out.tilesUsed = (nextTileSlot + rnasPerTile - 1) / rnasPerTile;
    out.chipsUsed = std::max<size_t>(
        1, (nextTileSlot + rnasPerChip - 1) / rnasPerChip);
    out.chipsUsed = std::min(out.chipsUsed, _config.chips);
    out.utilization = static_cast<double>(out.totalRnasUsed)
        / static_cast<double>(_config.totalRnas());
    out.fits = true;
    for (const auto &a : out.assignments)
        if (a.waves > 1)
            out.fits = false;
    return out;
}

std::string
MappingPlan::describe() const
{
    std::ostringstream os;
    os << "mapping plan: " << totalRnasUsed << " RNA blocks over "
       << tilesUsed << " tiles (" << chipsUsed << " chip"
       << (chipsUsed == 1 ? "" : "s") << "), utilization "
       << utilization * 100.0 << "%, max FIFO depth " << maxFifoDepth
       << (fits ? ", fully resident" : ", wave-scheduled") << "\n";
    for (const auto &a : assignments) {
        os << std::string(2 + 2 * a.depth, ' ') << a.description;
        if (a.neurons > 0) {
            os << ": " << a.rnaBlocks << " blocks, tiles ["
               << a.firstTile << ", " << a.lastTile << "], waves "
               << a.waves << ", fifo " << a.fifoDepth;
            if (a.broadcastBits > 0)
                os << ", " << a.broadcastBits << "-bit broadcast";
            if (a.feedbackLoop)
                os << ", feedback loop";
        } else if (a.skipRoute) {
            os << ": skip FIFO parked";
        } else if (a.fifoDepth > 0) {
            os << ": pooling window fifo " << a.fifoDepth;
        }
        os << "\n";
    }
    return os.str();
}

} // namespace rapidnn::rna
