/**
 * @file
 * NEON (aarch64) kernel variant. AdvSIMD is architecturally mandatory
 * on aarch64, so this translation unit needs no special compile flags
 * and the feature probe always reports it.
 *
 * Gathers have no NEON equivalent and stay scalar (dst[i] =
 * src[idx[i]]), which also means this variant never overreads — it is
 * still declared with the same gather8 tail-slack contract so callers
 * need no per-ISA special cases. quantize follows the AVX2 rule: SIMD
 * for the correctly-rounded double arithmetic, scalar final cast.
 */

#if defined(__aarch64__)

#include <arm_neon.h>

#include <algorithm>

#include "common/simd.hh"

namespace rapidnn::rna::kernels {

namespace {

void
pairKeys8Neon(const uint8_t *w, const uint8_t *x, size_t n,
              uint32_t shift, uint16_t *keys)
{
    const int16x8_t cnt = vdupq_n_s16(static_cast<int16_t>(shift));
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const uint16x8_t w16 = vmovl_u8(vld1_u8(w + i));
        const uint16x8_t x16 = vmovl_u8(vld1_u8(x + i));
        vst1q_u16(keys + i, vorrq_u16(vshlq_u16(w16, cnt), x16));
    }
    for (; i < n; ++i)
        keys[i] = static_cast<uint16_t>(
            (static_cast<uint32_t>(w[i]) << shift) | x[i]);
}

void
pairKeys16Neon(const uint16_t *w, const uint16_t *x, size_t n,
               uint32_t shift, uint32_t *keys)
{
    const int32x4_t cnt = vdupq_n_s32(static_cast<int32_t>(shift));
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const uint32x4_t w32 = vmovl_u16(vld1_u16(w + i));
        const uint32x4_t x32 = vmovl_u16(vld1_u16(x + i));
        vst1q_u32(keys + i, vorrq_u32(vshlq_u32(w32, cnt), x32));
    }
    for (; i < n; ++i)
        keys[i] = (static_cast<uint32_t>(w[i]) << shift) | x[i];
}

void
narrowNeon(const uint16_t *src, size_t n, uint8_t *dst)
{
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const uint8x8_t lo = vmovn_u16(vld1q_u16(src + i));
        const uint8x8_t hi = vmovn_u16(vld1q_u16(src + i + 8));
        vst1q_u8(dst + i, vcombine_u8(lo, hi));
    }
    for (; i < n; ++i)
        dst[i] = static_cast<uint8_t>(src[i]);
}

void
gather8Neon(const uint8_t *src, const uint32_t *idx, size_t n,
            uint8_t *dst)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = src[idx[i]];
}

uint16_t
maxU16Neon(const uint16_t *v, size_t n)
{
    size_t i = 0;
    uint16_t best = 0;
    if (n >= 8) {
        uint16x8_t acc = vld1q_u16(v);
        for (i = 8; i + 8 <= n; i += 8)
            acc = vmaxq_u16(acc, vld1q_u16(v + i));
        best = vmaxvq_u16(acc);
    } else {
        best = v[0];
        i = 1;
    }
    for (; i < n; ++i)
        best = std::max(best, v[i]);
    return best;
}

void
quantizeNeon(const double *x, size_t n, double lo, double hi,
             uint32_t maxKey, uint32_t *keys)
{
    const float64x2_t loV = vdupq_n_f64(lo);
    const float64x2_t spanV = vdupq_n_f64(hi - lo);
    const float64x2_t zeroV = vdupq_n_f64(0.0);
    const float64x2_t oneV = vdupq_n_f64(1.0);
    const float64x2_t maxKeyV =
        vdupq_n_f64(static_cast<double>(maxKey));
    const float64x2_t halfV = vdupq_n_f64(0.5);
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const float64x2_t t =
            vdivq_f64(vsubq_f64(vld1q_f64(x + i), loV), spanV);
        const float64x2_t c =
            vmaxq_f64(vminq_f64(t, oneV), zeroV);
        const float64x2_t s =
            vaddq_f64(vmulq_f64(c, maxKeyV), halfV);
        double scaled[2];
        vst1q_f64(scaled, s);
        keys[i] = static_cast<uint32_t>(scaled[0]);
        keys[i + 1] = static_cast<uint32_t>(scaled[1]);
    }
    for (; i < n; ++i) {
        const double t = (x[i] - lo) / (hi - lo);
        const double clamped = std::clamp(t, 0.0, 1.0);
        keys[i] = static_cast<uint32_t>(
            clamped * static_cast<double>(maxKey) + 0.5);
    }
}

void
directLookupNeon(const uint32_t *queries, size_t n,
                 const uint32_t *bucketSeg, size_t bucketCount,
                 uint32_t bucketShift, const uint32_t *segStart,
                 const uint32_t *segRow, size_t segCount,
                 uint32_t *rows)
{
    for (size_t i = 0; i < n; ++i) {
        const uint32_t q = queries[i];
        const size_t bucket =
            std::min(static_cast<size_t>(q >> bucketShift),
                     bucketCount - 1);
        size_t seg = bucketSeg[bucket];
        while (seg + 1 < segCount && segStart[seg + 1] <= q)
            ++seg;
        rows[i] = segRow[seg];
    }
}

int64_t
gatherSum16Neon(const int64_t *table, const uint16_t *keys, size_t n)
{
    // NEON has no gather; the scalar loop already saturates the load
    // ports, and int64 addition order is free anyway.
    int64_t sum = 0;
    for (size_t i = 0; i < n; ++i)
        sum += table[keys[i]];
    return sum;
}

int64_t
gatherSum32Neon(const int64_t *table, const uint32_t *keys, size_t n)
{
    int64_t sum = 0;
    for (size_t i = 0; i < n; ++i)
        sum += table[keys[i]];
    return sum;
}

void
pairKeys8LanesNeon(const uint8_t *w, const uint8_t *const *xs,
                   size_t lanes, size_t n, uint32_t shift,
                   uint16_t *keys, size_t keyStride)
{
    const int16x8_t cnt = vdupq_n_s16(static_cast<int16_t>(shift));
    size_t i = 0;
    // Chunk-outer, lane-inner: each shifted weight chunk is loaded and
    // widened once, then OR'd against every lane's activation chunk.
    for (; i + 8 <= n; i += 8) {
        const uint16x8_t ws = vshlq_u16(vmovl_u8(vld1_u8(w + i)), cnt);
        for (size_t lane = 0; lane < lanes; ++lane) {
            const uint16x8_t x16 = vmovl_u8(vld1_u8(xs[lane] + i));
            vst1q_u16(keys + lane * keyStride + i, vorrq_u16(ws, x16));
        }
    }
    for (; i < n; ++i) {
        const uint32_t ws = static_cast<uint32_t>(w[i]) << shift;
        for (size_t lane = 0; lane < lanes; ++lane)
            keys[lane * keyStride + i] =
                static_cast<uint16_t>(ws | xs[lane][i]);
    }
}

} // namespace

extern const simd::KernelOps kNeonOps;
const simd::KernelOps kNeonOps = {
    "neon",       pairKeys8Neon, pairKeys16Neon, narrowNeon,
    gather8Neon,  maxU16Neon,    quantizeNeon,   directLookupNeon,
    gatherSum16Neon, gatherSum32Neon, pairKeys8LanesNeon,
};

} // namespace rapidnn::rna::kernels

#endif // aarch64
