/**
 * @file
 * Kernel-variant registry and resolution for the SIMD hot loops.
 *
 * The dispatch *types* (simd::Variant, simd::KernelOps) live in
 * common/simd.hh so any layer can consume a resolved table; this
 * header owns the *implementations*: one KernelOps table per ISA the
 * build produced (scalar always; AVX2/AVX-512 on x86-64 builds whose
 * compiler takes -mavx2/-mavx512f; NEON on aarch64), plus the policy
 * that turns a requested variant + RAPIDNN_SIMD override + probed CPU
 * features into the table Chip::configure installs.
 *
 * Selection precedence: an explicit non-Auto ChipConfig::simd wins;
 * otherwise RAPIDNN_SIMD (fatal if it names a variant this host or
 * build cannot run — a forced variant must never silently degrade);
 * otherwise the best available (avx512 > avx2 > neon > scalar).
 */

#ifndef RAPIDNN_RNA_KERNELS_KERNELS_HH
#define RAPIDNN_RNA_KERNELS_KERNELS_HH

#include <vector>

#include "common/simd.hh"

namespace rapidnn::rna::kernels {

/**
 * The KernelOps table for one concrete variant, or nullptr when this
 * build/host cannot run it (also for Off and Auto, which name no
 * implementation).
 */
const simd::KernelOps *opsFor(simd::Variant v);

/**
 * Concrete variants this process can execute right now (build flags
 * AND cpu features), best first, Scalar always last. Off/Auto are
 * policies, not implementations, and are never listed.
 */
std::vector<simd::Variant> availableVariants();

/**
 * Resolve a requested variant to the concrete one to run: applies the
 * RAPIDNN_SIMD override when the request is Auto, falls back to the
 * best available for Auto, and is fatal when an explicitly requested
 * (or env-forced) variant is not available on this host/build.
 * Returns Off only when explicitly requested.
 */
simd::Variant resolve(simd::Variant requested);

} // namespace rapidnn::rna::kernels

#endif // RAPIDNN_RNA_KERNELS_KERNELS_HH
