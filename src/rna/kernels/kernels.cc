/**
 * @file
 * Kernel-variant registry: which KernelOps tables this build carries,
 * which the host can run, and how a requested variant resolves.
 */

#include "rna/kernels/kernels.hh"

#include <cstdlib>

#include "common/check.hh"

namespace rapidnn::rna::kernels {

extern const simd::KernelOps kScalarOps;
#ifdef RAPIDNN_BUILD_AVX2
extern const simd::KernelOps kAvx2Ops;
#endif
#ifdef RAPIDNN_BUILD_AVX512
extern const simd::KernelOps kAvx512Ops;
#endif
#ifdef RAPIDNN_BUILD_NEON
extern const simd::KernelOps kNeonOps;
#endif

const simd::KernelOps *
opsFor(simd::Variant v)
{
    const simd::CpuFeatures &f = simd::cpuFeatures();
    switch (v) {
      case simd::Variant::Scalar:
        return &kScalarOps;
      case simd::Variant::Avx2:
#ifdef RAPIDNN_BUILD_AVX2
        if (f.avx2)
            return &kAvx2Ops;
#endif
        return nullptr;
      case simd::Variant::Avx512:
#ifdef RAPIDNN_BUILD_AVX512
        if (f.avx512)
            return &kAvx512Ops;
#endif
        return nullptr;
      case simd::Variant::Neon:
#ifdef RAPIDNN_BUILD_NEON
        if (f.neon)
            return &kNeonOps;
#endif
        return nullptr;
      case simd::Variant::Off:
      case simd::Variant::Auto:
        return nullptr;
    }
    return nullptr;
}

std::vector<simd::Variant>
availableVariants()
{
    std::vector<simd::Variant> out;
    for (simd::Variant v : {simd::Variant::Avx512, simd::Variant::Avx2,
                            simd::Variant::Neon})
        if (opsFor(v) != nullptr)
            out.push_back(v);
    out.push_back(simd::Variant::Scalar);
    return out;
}

simd::Variant
resolve(simd::Variant requested)
{
    simd::Variant v = requested;
    if (v == simd::Variant::Auto) {
        if (const char *env = std::getenv("RAPIDNN_SIMD"))
            v = simd::parseVariant(env);
    }
    if (v == simd::Variant::Auto)
        return availableVariants().front();
    if (v == simd::Variant::Off)
        return v;
    RAPIDNN_CHECK(opsFor(v) != nullptr, "SIMD variant \"",
                  simd::variantName(v),
                  "\" is not available on this host/build");
    return v;
}

} // namespace rapidnn::rna::kernels
