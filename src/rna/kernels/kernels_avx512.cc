/**
 * @file
 * AVX-512 kernel variant (F + BW). Compiled with -mavx512f -mavx512bw
 * (this translation unit only) and executed only after the runtime
 * probe confirms both features.
 *
 * Same bitwise-exactness rules as the AVX2 variant; one difference is
 * that the quantize tail cast can stay vectorized here because
 * vcvttpd2udq converts to *unsigned* int32 with truncation — identical
 * to the scalar uint32_t cast for every in-range value the clamp
 * guarantees.
 */

#if defined(__x86_64__) || defined(__i386__)

// GCC's AVX-512 headers implement unmasked gathers / extracts /
// reductions by passing _mm512_undefined_epi32() to an all-ones-mask
// builtin; -W(maybe-)uninitialized flags that placeholder when the
// sanitizers keep the wrappers from folding away (GCC PR 105593). The
// placeholder lanes are fully overwritten, so the warning is a false
// positive — silenced for this intrinsics-only translation unit.
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

#include <immintrin.h>

#include <algorithm>
#include <cstring>

#include "common/simd.hh"

namespace rapidnn::rna::kernels {

namespace {

void
pairKeys8Avx512(const uint8_t *w, const uint8_t *x, size_t n,
                uint32_t shift, uint16_t *keys)
{
    const __m128i cnt = _mm_cvtsi32_si128(static_cast<int>(shift));
    size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m512i w16 = _mm512_cvtepu8_epi16(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(w + i)));
        const __m512i x16 = _mm512_cvtepu8_epi16(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(x + i)));
        const __m512i k =
            _mm512_or_si512(_mm512_sll_epi16(w16, cnt), x16);
        _mm512_storeu_si512(keys + i, k);
    }
    for (; i < n; ++i)
        keys[i] = static_cast<uint16_t>(
            (static_cast<uint32_t>(w[i]) << shift) | x[i]);
}

void
pairKeys16Avx512(const uint16_t *w, const uint16_t *x, size_t n,
                 uint32_t shift, uint32_t *keys)
{
    const __m128i cnt = _mm_cvtsi32_si128(static_cast<int>(shift));
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m512i w32 = _mm512_cvtepu16_epi32(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(w + i)));
        const __m512i x32 = _mm512_cvtepu16_epi32(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(x + i)));
        const __m512i k =
            _mm512_or_si512(_mm512_sll_epi32(w32, cnt), x32);
        _mm512_storeu_si512(keys + i, k);
    }
    for (; i < n; ++i)
        keys[i] = (static_cast<uint32_t>(w[i]) << shift) | x[i];
}

void
narrowAvx512(const uint16_t *src, size_t n, uint8_t *dst)
{
    size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m512i v = _mm512_loadu_si512(src + i);
        // vpmovwb truncates each u16 lane; values are < 256.
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                            _mm512_cvtepi16_epi8(v));
    }
    for (; i < n; ++i)
        dst[i] = static_cast<uint8_t>(src[i]);
}

void
gather8Avx512(const uint8_t *src, const uint32_t *idx, size_t n,
              uint8_t *dst)
{
    const __m512i byteMask = _mm512_set1_epi32(0xFF);
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m512i vidx = _mm512_loadu_si512(idx + i);
        // 4-byte gather per lane at scale 1: needs the source's tail
        // slack, same as the AVX2 variant.
        const __m512i g = _mm512_and_si512(
            _mm512_i32gather_epi32(vidx, src, 1), byteMask);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + i),
                         _mm512_cvtepi32_epi8(g));
    }
    for (; i < n; ++i)
        dst[i] = src[idx[i]];
}

uint16_t
maxU16Avx512(const uint16_t *v, size_t n)
{
    size_t i = 0;
    uint16_t best = 0;
    if (n >= 32) {
        __m512i acc = _mm512_loadu_si512(v);
        for (i = 32; i + 32 <= n; i += 32)
            acc = _mm512_max_epu16(acc, _mm512_loadu_si512(v + i));
        alignas(64) uint16_t lanes[32];
        _mm512_store_si512(lanes, acc);
        for (uint16_t lane : lanes)
            best = std::max(best, lane);
    } else {
        best = v[0];
        i = 1;
    }
    for (; i < n; ++i)
        best = std::max(best, v[i]);
    return best;
}

void
quantizeAvx512(const double *x, size_t n, double lo, double hi,
               uint32_t maxKey, uint32_t *keys)
{
    const __m512d loV = _mm512_set1_pd(lo);
    const __m512d spanV = _mm512_set1_pd(hi - lo);
    const __m512d zeroV = _mm512_setzero_pd();
    const __m512d oneV = _mm512_set1_pd(1.0);
    const __m512d maxKeyV =
        _mm512_set1_pd(static_cast<double>(maxKey));
    const __m512d halfV = _mm512_set1_pd(0.5);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512d t = _mm512_div_pd(
            _mm512_sub_pd(_mm512_loadu_pd(x + i), loV), spanV);
        const __m512d c =
            _mm512_max_pd(_mm512_min_pd(t, oneV), zeroV);
        const __m512d s =
            _mm512_add_pd(_mm512_mul_pd(c, maxKeyV), halfV);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(keys + i),
                            _mm512_cvttpd_epu32(s));
    }
    for (; i < n; ++i) {
        const double t = (x[i] - lo) / (hi - lo);
        const double clamped = std::clamp(t, 0.0, 1.0);
        keys[i] = static_cast<uint32_t>(
            clamped * static_cast<double>(maxKey) + 0.5);
    }
}

void
directLookupAvx512(const uint32_t *queries, size_t n,
                   const uint32_t *bucketSeg, size_t bucketCount,
                   uint32_t bucketShift, const uint32_t *segStart,
                   const uint32_t *segRow, size_t segCount,
                   uint32_t *rows)
{
    const __m128i shiftCnt =
        _mm_cvtsi32_si128(static_cast<int>(bucketShift));
    const __m512i bucketMax = _mm512_set1_epi32(
        static_cast<int>(static_cast<uint32_t>(bucketCount - 1)));
    const __m512i segMax = _mm512_set1_epi32(
        static_cast<int>(static_cast<uint32_t>(segCount - 1)));
    const __m512i oneV = _mm512_set1_epi32(1);
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m512i q = _mm512_loadu_si512(queries + i);
        const __m512i bucket = _mm512_min_epu32(
            _mm512_srl_epi32(q, shiftCnt), bucketMax);
        __m512i seg = _mm512_i32gather_epi32(bucket, bucketSeg, 4);
        for (;;) {
            const __m512i next = _mm512_add_epi32(seg, oneV);
            const __mmask16 valid =
                _mm512_cmple_epu32_mask(next, segMax);
            const __m512i clamped = _mm512_min_epu32(next, segMax);
            const __m512i nextStart =
                _mm512_i32gather_epi32(clamped, segStart, 4);
            const __mmask16 advance =
                valid & _mm512_cmple_epu32_mask(nextStart, q);
            if (advance == 0)
                break;
            seg = _mm512_mask_add_epi32(seg, advance, seg, oneV);
        }
        _mm512_storeu_si512(rows + i,
                            _mm512_i32gather_epi32(seg, segRow, 4));
    }
    for (; i < n; ++i) {
        const uint32_t q = queries[i];
        const size_t bucket =
            std::min(static_cast<size_t>(q >> bucketShift),
                     bucketCount - 1);
        size_t seg = bucketSeg[bucket];
        while (seg + 1 < segCount && segStart[seg + 1] <= q)
            ++seg;
        rows[i] = segRow[seg];
    }
}

int64_t
gatherSum16Avx512(const int64_t *table, const uint16_t *keys, size_t n)
{
    // Two independent 8-lane accumulators keep the gathers pipelined;
    // int64 addition is associative, so the lane split cannot change
    // the total.
    __m512i acc0 = _mm512_setzero_si512();
    __m512i acc1 = _mm512_setzero_si512();
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m512i k32 = _mm512_cvtepu16_epi32(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(keys + i)));
        const __m256i lo = _mm512_castsi512_si256(k32);
        const __m256i hi = _mm512_extracti64x4_epi64(k32, 1);
        acc0 = _mm512_add_epi64(acc0,
                                _mm512_i32gather_epi64(lo, table, 8));
        acc1 = _mm512_add_epi64(acc1,
                                _mm512_i32gather_epi64(hi, table, 8));
    }
    int64_t sum = _mm512_reduce_add_epi64(_mm512_add_epi64(acc0, acc1));
    for (; i < n; ++i)
        sum += table[keys[i]];
    return sum;
}

int64_t
gatherSum32Avx512(const int64_t *table, const uint32_t *keys, size_t n)
{
    __m512i acc = _mm512_setzero_si512();
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i idx = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(keys + i));
        acc = _mm512_add_epi64(acc,
                               _mm512_i32gather_epi64(idx, table, 8));
    }
    int64_t sum = _mm512_reduce_add_epi64(acc);
    for (; i < n; ++i)
        sum += table[keys[i]];
    return sum;
}

void
pairKeys8LanesAvx512(const uint8_t *w, const uint8_t *const *xs,
                     size_t lanes, size_t n, uint32_t shift,
                     uint16_t *keys, size_t keyStride)
{
    const __m128i cnt = _mm_cvtsi32_si128(static_cast<int>(shift));
    size_t i = 0;
    // Chunk-outer, lane-inner: each shifted weight chunk is loaded and
    // widened once, then OR'd against every lane's activation chunk.
    for (; i + 32 <= n; i += 32) {
        const __m512i ws = _mm512_sll_epi16(
            _mm512_cvtepu8_epi16(_mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(w + i))),
            cnt);
        for (size_t lane = 0; lane < lanes; ++lane) {
            const __m512i x16 = _mm512_cvtepu8_epi16(
                _mm256_loadu_si256(reinterpret_cast<const __m256i *>(
                    xs[lane] + i)));
            _mm512_storeu_si512(keys + lane * keyStride + i,
                                _mm512_or_si512(ws, x16));
        }
    }
    for (; i < n; ++i) {
        const uint32_t ws = static_cast<uint32_t>(w[i]) << shift;
        for (size_t lane = 0; lane < lanes; ++lane)
            keys[lane * keyStride + i] =
                static_cast<uint16_t>(ws | xs[lane][i]);
    }
}

} // namespace

extern const simd::KernelOps kAvx512Ops;
const simd::KernelOps kAvx512Ops = {
    "avx512",        pairKeys8Avx512, pairKeys16Avx512,
    narrowAvx512,    gather8Avx512,   maxU16Avx512,
    quantizeAvx512,  directLookupAvx512,
    gatherSum16Avx512, gatherSum32Avx512, pairKeys8LanesAvx512,
};

} // namespace rapidnn::rna::kernels

#endif // x86
