/**
 * @file
 * AVX2 kernel variant. Compiled with -mavx2 (this translation unit
 * only); only executed after the runtime feature probe confirms AVX2,
 * so the rest of the binary stays baseline-ISA clean.
 *
 * Bitwise-exactness notes (the equivalence suite pins all of this):
 *  - Integer kernels compute the identical values lane-wise; vector
 *    bodies stop at the last full vector and tails run scalar, so no
 *    out-of-range element is ever touched — except gather8, whose
 *    4-byte-per-lane vpgatherdd may overread up to 3 bytes past the
 *    addressed element and therefore requires the AlignedVec tail
 *    slack its contract demands.
 *  - quantize performs the exact scalar double sequence per lane
 *    (sub, div, clamp, mul, add); the final double->uint32 truncation
 *    runs scalar because vcvttpd2dq saturates through *signed* int32,
 *    which would break keys >= 2^31 for 32-bit CAMs.
 */

#if defined(__x86_64__) || defined(__i386__)

// GCC's AVX2 headers implement unmasked gathers by passing
// _mm256_undefined_si256() to an all-ones-mask builtin;
// -W(maybe-)uninitialized flags that placeholder when the sanitizers
// keep the wrappers from folding away (GCC PR 105593). The placeholder
// lanes are fully overwritten, so the warning is a false positive —
// silenced for this intrinsics-only translation unit.
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

#include <immintrin.h>

#include <algorithm>
#include <cstring>

#include "common/simd.hh"

namespace rapidnn::rna::kernels {

namespace {

void
pairKeys8Avx2(const uint8_t *w, const uint8_t *x, size_t n,
              uint32_t shift, uint16_t *keys)
{
    const __m128i cnt = _mm_cvtsi32_si128(static_cast<int>(shift));
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m256i w16 = _mm256_cvtepu8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(w + i)));
        const __m256i x16 = _mm256_cvtepu8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(x + i)));
        const __m256i k =
            _mm256_or_si256(_mm256_sll_epi16(w16, cnt), x16);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(keys + i), k);
    }
    for (; i < n; ++i)
        keys[i] = static_cast<uint16_t>(
            (static_cast<uint32_t>(w[i]) << shift) | x[i]);
}

void
pairKeys16Avx2(const uint16_t *w, const uint16_t *x, size_t n,
               uint32_t shift, uint32_t *keys)
{
    const __m128i cnt = _mm_cvtsi32_si128(static_cast<int>(shift));
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i w32 = _mm256_cvtepu16_epi32(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(w + i)));
        const __m256i x32 = _mm256_cvtepu16_epi32(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(x + i)));
        const __m256i k =
            _mm256_or_si256(_mm256_sll_epi32(w32, cnt), x32);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(keys + i), k);
    }
    for (; i < n; ++i)
        keys[i] = (static_cast<uint32_t>(w[i]) << shift) | x[i];
}

void
narrowAvx2(const uint16_t *src, size_t n, uint8_t *dst)
{
    size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        const __m256i b = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i + 16));
        // packus interleaves the 128-bit lanes; permute restores the
        // element order. Values are < 256, so saturation is a no-op.
        const __m256i packed = _mm256_permute4x64_epi64(
            _mm256_packus_epi16(a, b), 0xD8);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                            packed);
    }
    for (; i < n; ++i)
        dst[i] = static_cast<uint8_t>(src[i]);
}

void
gather8Avx2(const uint8_t *src, const uint32_t *idx, size_t n,
            uint8_t *dst)
{
    const __m256i byteMask = _mm256_set1_epi32(0xFF);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i vidx = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(idx + i));
        // 4-byte gather per lane at scale 1: reads up to 3 bytes past
        // the addressed element — covered by the source's tail slack.
        const __m256i g = _mm256_and_si256(
            _mm256_i32gather_epi32(
                reinterpret_cast<const int *>(src), vidx, 1),
            byteMask);
        const __m256i p16 = _mm256_packus_epi32(g, g);
        const __m256i p8 = _mm256_packus_epi16(p16, p16);
        const uint32_t lo = static_cast<uint32_t>(
            _mm256_extract_epi32(p8, 0));
        const uint32_t hi = static_cast<uint32_t>(
            _mm256_extract_epi32(p8, 4));
        std::memcpy(dst + i, &lo, 4);
        std::memcpy(dst + i + 4, &hi, 4);
    }
    for (; i < n; ++i)
        dst[i] = src[idx[i]];
}

uint16_t
maxU16Avx2(const uint16_t *v, size_t n)
{
    size_t i = 0;
    uint16_t best = 0;
    if (n >= 16) {
        __m256i acc = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(v));
        for (i = 16; i + 16 <= n; i += 16)
            acc = _mm256_max_epu16(
                acc, _mm256_loadu_si256(
                         reinterpret_cast<const __m256i *>(v + i)));
        alignas(32) uint16_t lanes[16];
        _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc);
        for (uint16_t lane : lanes)
            best = std::max(best, lane);
    } else {
        best = v[0];
        i = 1;
    }
    for (; i < n; ++i)
        best = std::max(best, v[i]);
    return best;
}

void
quantizeAvx2(const double *x, size_t n, double lo, double hi,
             uint32_t maxKey, uint32_t *keys)
{
    const __m256d loV = _mm256_set1_pd(lo);
    const __m256d spanV = _mm256_set1_pd(hi - lo);
    const __m256d zeroV = _mm256_setzero_pd();
    const __m256d oneV = _mm256_set1_pd(1.0);
    const __m256d maxKeyV =
        _mm256_set1_pd(static_cast<double>(maxKey));
    const __m256d halfV = _mm256_set1_pd(0.5);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d t = _mm256_div_pd(
            _mm256_sub_pd(_mm256_loadu_pd(x + i), loV), spanV);
        const __m256d c =
            _mm256_max_pd(_mm256_min_pd(t, oneV), zeroV);
        const __m256d s =
            _mm256_add_pd(_mm256_mul_pd(c, maxKeyV), halfV);
        alignas(32) double scaled[4];
        _mm256_store_pd(scaled, s);
        for (size_t j = 0; j < 4; ++j)
            keys[i + j] = static_cast<uint32_t>(scaled[j]);
    }
    for (; i < n; ++i) {
        const double t = (x[i] - lo) / (hi - lo);
        const double clamped = std::clamp(t, 0.0, 1.0);
        keys[i] = static_cast<uint32_t>(
            clamped * static_cast<double>(maxKey) + 0.5);
    }
}

/** Unsigned a <= b per 32-bit lane (AVX2 has no unsigned compare). */
inline __m256i
cmpleEpu32(__m256i a, __m256i b)
{
    return _mm256_cmpeq_epi32(_mm256_min_epu32(a, b), a);
}

void
directLookupAvx2(const uint32_t *queries, size_t n,
                 const uint32_t *bucketSeg, size_t bucketCount,
                 uint32_t bucketShift, const uint32_t *segStart,
                 const uint32_t *segRow, size_t segCount,
                 uint32_t *rows)
{
    const __m128i shiftCnt =
        _mm_cvtsi32_si128(static_cast<int>(bucketShift));
    const __m256i bucketMax = _mm256_set1_epi32(
        static_cast<int>(static_cast<uint32_t>(bucketCount - 1)));
    const __m256i segMax = _mm256_set1_epi32(
        static_cast<int>(static_cast<uint32_t>(segCount - 1)));
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i q = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(queries + i));
        const __m256i bucket = _mm256_min_epu32(
            _mm256_srl_epi32(q, shiftCnt), bucketMax);
        __m256i seg = _mm256_i32gather_epi32(
            reinterpret_cast<const int *>(bucketSeg), bucket, 4);
        // Per-lane walk of the boundary segments inside the bucket;
        // almost always zero or one iteration (see buildDirectIndex).
        for (;;) {
            const __m256i next =
                _mm256_sub_epi32(seg, _mm256_set1_epi32(-1));
            const __m256i valid = cmpleEpu32(next, segMax);
            const __m256i clamped = _mm256_min_epu32(next, segMax);
            const __m256i nextStart = _mm256_i32gather_epi32(
                reinterpret_cast<const int *>(segStart), clamped, 4);
            const __m256i advance =
                _mm256_and_si256(valid, cmpleEpu32(nextStart, q));
            if (_mm256_testz_si256(advance, advance))
                break;
            // Advancing lanes hold -1; subtracting adds one.
            seg = _mm256_sub_epi32(seg, advance);
        }
        const __m256i r = _mm256_i32gather_epi32(
            reinterpret_cast<const int *>(segRow), seg, 4);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(rows + i), r);
    }
    for (; i < n; ++i) {
        const uint32_t q = queries[i];
        const size_t bucket =
            std::min(static_cast<size_t>(q >> bucketShift),
                     bucketCount - 1);
        size_t seg = bucketSeg[bucket];
        while (seg + 1 < segCount && segStart[seg + 1] <= q)
            ++seg;
        rows[i] = segRow[seg];
    }
}

int64_t
gatherSum16Avx2(const int64_t *table, const uint16_t *keys, size_t n)
{
    // Two independent 4-lane accumulators keep the gathers pipelined;
    // int64 addition is associative, so the lane split cannot change
    // the total.
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i k32 = _mm256_cvtepu16_epi32(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(keys + i)));
        const __m128i lo = _mm256_castsi256_si128(k32);
        const __m128i hi = _mm256_extracti128_si256(k32, 1);
        acc0 = _mm256_add_epi64(
            acc0, _mm256_i32gather_epi64(
                      reinterpret_cast<const long long *>(table), lo,
                      8));
        acc1 = _mm256_add_epi64(
            acc1, _mm256_i32gather_epi64(
                      reinterpret_cast<const long long *>(table), hi,
                      8));
    }
    alignas(32) int64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes),
                       _mm256_add_epi64(acc0, acc1));
    int64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for (; i < n; ++i)
        sum += table[keys[i]];
    return sum;
}

int64_t
gatherSum32Avx2(const int64_t *table, const uint32_t *keys, size_t n)
{
    __m256i acc = _mm256_setzero_si256();
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128i idx = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(keys + i));
        acc = _mm256_add_epi64(
            acc, _mm256_i32gather_epi64(
                     reinterpret_cast<const long long *>(table), idx,
                     8));
    }
    alignas(32) int64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc);
    int64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for (; i < n; ++i)
        sum += table[keys[i]];
    return sum;
}

void
pairKeys8LanesAvx2(const uint8_t *w, const uint8_t *const *xs,
                   size_t lanes, size_t n, uint32_t shift,
                   uint16_t *keys, size_t keyStride)
{
    const __m128i cnt = _mm_cvtsi32_si128(static_cast<int>(shift));
    size_t i = 0;
    // Chunk-outer, lane-inner: each shifted weight chunk is loaded and
    // widened once, then OR'd against every lane's activation chunk.
    for (; i + 16 <= n; i += 16) {
        const __m256i ws = _mm256_sll_epi16(
            _mm256_cvtepu8_epi16(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(w + i))),
            cnt);
        for (size_t lane = 0; lane < lanes; ++lane) {
            const __m256i x16 = _mm256_cvtepu8_epi16(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(xs[lane] + i)));
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(keys + lane * keyStride +
                                            i),
                _mm256_or_si256(ws, x16));
        }
    }
    for (; i < n; ++i) {
        const uint32_t ws = static_cast<uint32_t>(w[i]) << shift;
        for (size_t lane = 0; lane < lanes; ++lane)
            keys[lane * keyStride + i] =
                static_cast<uint16_t>(ws | xs[lane][i]);
    }
}

} // namespace

extern const simd::KernelOps kAvx2Ops;
const simd::KernelOps kAvx2Ops = {
    "avx2",       pairKeys8Avx2, pairKeys16Avx2, narrowAvx2,
    gather8Avx2,  maxU16Avx2,    quantizeAvx2,   directLookupAvx2,
    gatherSum16Avx2, gatherSum32Avx2, pairKeys8LanesAvx2,
};

} // namespace rapidnn::rna::kernels

#endif // x86
