/**
 * @file
 * Portable scalar implementations of the kernel primitives.
 *
 * These are the semantic reference every vector variant must match
 * bit-for-bit (tests/kernel_equivalence_test.cc): same key values,
 * same gathered bytes, same quantized codes, same NDCAM rows. The
 * loops are written straight-line so the compiler may autovectorize
 * them, but they use no intrinsics and no alignment or tail-slack
 * assumptions.
 */

#include <algorithm>

#include "common/simd.hh"

namespace rapidnn::rna::kernels {

namespace {

void
pairKeys8Scalar(const uint8_t *w, const uint8_t *x, size_t n,
                uint32_t shift, uint16_t *keys)
{
    for (size_t i = 0; i < n; ++i)
        keys[i] = static_cast<uint16_t>(
            (static_cast<uint32_t>(w[i]) << shift) | x[i]);
}

void
pairKeys16Scalar(const uint16_t *w, const uint16_t *x, size_t n,
                 uint32_t shift, uint32_t *keys)
{
    for (size_t i = 0; i < n; ++i)
        keys[i] = (static_cast<uint32_t>(w[i]) << shift) | x[i];
}

void
narrowScalar(const uint16_t *src, size_t n, uint8_t *dst)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = static_cast<uint8_t>(src[i]);
}

void
gather8Scalar(const uint8_t *src, const uint32_t *idx, size_t n,
              uint8_t *dst)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = src[idx[i]];
}

uint16_t
maxU16Scalar(const uint16_t *v, size_t n)
{
    uint16_t best = v[0];
    for (size_t i = 1; i < n; ++i)
        best = std::max(best, v[i]);
    return best;
}

void
quantizeScalar(const double *x, size_t n, double lo, double hi,
               uint32_t maxKey, uint32_t *keys)
{
    // Identical operation sequence to FixedPointCodec::quantize; every
    // step is a correctly-rounded IEEE double op, so any per-lane
    // reimplementation of the same sequence is bitwise equal.
    for (size_t i = 0; i < n; ++i) {
        const double t = (x[i] - lo) / (hi - lo);
        const double clamped = std::clamp(t, 0.0, 1.0);
        const double scaled = clamped * static_cast<double>(maxKey);
        keys[i] = static_cast<uint32_t>(scaled + 0.5);
    }
}

void
directLookupScalar(const uint32_t *queries, size_t n,
                   const uint32_t *bucketSeg, size_t bucketCount,
                   uint32_t bucketShift, const uint32_t *segStart,
                   const uint32_t *segRow, size_t segCount,
                   uint32_t *rows)
{
    for (size_t i = 0; i < n; ++i) {
        const uint32_t q = queries[i];
        const size_t bucket =
            std::min(static_cast<size_t>(q >> bucketShift),
                     bucketCount - 1);
        size_t seg = bucketSeg[bucket];
        while (seg + 1 < segCount && segStart[seg + 1] <= q)
            ++seg;
        rows[i] = segRow[seg];
    }
}

int64_t
gatherSum16Scalar(const int64_t *table, const uint16_t *keys, size_t n)
{
    int64_t sum = 0;
    for (size_t i = 0; i < n; ++i)
        sum += table[keys[i]];
    return sum;
}

int64_t
gatherSum32Scalar(const int64_t *table, const uint32_t *keys, size_t n)
{
    int64_t sum = 0;
    for (size_t i = 0; i < n; ++i)
        sum += table[keys[i]];
    return sum;
}

void
pairKeys8LanesScalar(const uint8_t *w, const uint8_t *const *xs,
                     size_t lanes, size_t n, uint32_t shift,
                     uint16_t *keys, size_t keyStride)
{
    for (size_t lane = 0; lane < lanes; ++lane) {
        const uint8_t *x = xs[lane];
        uint16_t *out = keys + lane * keyStride;
        for (size_t i = 0; i < n; ++i)
            out[i] = static_cast<uint16_t>(
                (static_cast<uint32_t>(w[i]) << shift) | x[i]);
    }
}

} // namespace

extern const simd::KernelOps kScalarOps;
const simd::KernelOps kScalarOps = {
    "scalar",         pairKeys8Scalar, pairKeys16Scalar, narrowScalar,
    gather8Scalar,    maxU16Scalar,    quantizeScalar,
    directLookupScalar, gatherSum16Scalar, gatherSum32Scalar,
    pairKeys8LanesScalar,
};

} // namespace rapidnn::rna::kernels
