#include "rna/chip.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>

#include "common/check.hh"
#include "common/sync.hh"
#include "common/task_pool.hh"
#include "nvm/data_block.hh"
#include "rna/kernels/kernels.hh"
#include "telemetry/telemetry.hh"

namespace rapidnn::rna {

using composer::EncodedTensor;
using composer::RLayer;
using composer::RLayerKind;

namespace {

/**
 * Fixed intra-op shard grid. The grid is a constant — never derived
 * from the thread count — so the shard boundaries, per-shard work and
 * the post-shard reduction order are identical no matter how many pool
 * lanes end up executing them. 32 shards keeps dynamic work stealing
 * balanced up to well past 8 lanes while the per-shard claim stays one
 * atomic increment.
 */
constexpr size_t kIntraOpShardGrid = 32;

size_t
shardCount(size_t items)
{
    return std::min(items, kIntraOpShardGrid);
}

/**
 * PerfReport category a layer's host execution time is traced under,
 * so measured wall time lines up with the modeled cycle breakdown.
 */
const char *
stageName(RLayerKind kind)
{
    switch (kind) {
      case RLayerKind::MaxPool:
      case RLayerKind::AvgPool:
        return "pooling";
      case RLayerKind::Flatten:
        return "other";
      default:
        return "weighted_accum";  // Dense, Conv, Recurrent, Residual
    }
}

/**
 * Stage-duration histograms, registered once and cached so the per-
 * layer hot path never touches the registry lock. Populated only while
 * tracing is enabled (the ScopedSpan guard reads no clock otherwise).
 */
telemetry::Histogram *
stageHistogram(const char *stage)
{
    auto make = [](const char *s) {
        return &telemetry::Registry::global().histogram(
            "rapidnn_chip_stage_seconds",
            "Host wall time of Chip::infer stages, keyed by "
            "PerfReport category (sampled while tracing is enabled)",
            telemetry::stageBucketsSeconds(),
            std::string("stage=\"") + s + "\"");
    };
    static telemetry::Histogram *encoding = make("encoding");
    static telemetry::Histogram *weighted = make("weighted_accum");
    static telemetry::Histogram *pooling = make("pooling");
    static telemetry::Histogram *other = make("other");
    if (std::strcmp(stage, "encoding") == 0)
        return encoding;
    if (std::strcmp(stage, "weighted_accum") == 0)
        return weighted;
    if (std::strcmp(stage, "pooling") == 0)
        return pooling;
    return other;
}

/** Contiguous item range [begin, end) of one shard. */
std::pair<size_t, size_t>
shardRange(size_t items, size_t shard, size_t shards)
{
    return {items * shard / shards, items * (shard + 1) / shards};
}

/**
 * Leases the chip's shared workspace for the duration of one infer()
 * call. infer() is const and documented safe for concurrent calls on
 * one chip, so the lease is a try-acquire: the winner reuses the
 * pre-sized shared workspace (the steady-state allocation-free path),
 * any concurrent loser gets a freshly allocated private spare.
 *
 * This is a lock-free capability (Workspace::busy) that clang's
 * thread-safety analysis cannot track, so the acquire/release pair is
 * marked RAPIDNN_NO_THREAD_SAFETY_ANALYSIS and the invariant is stated
 * here instead (DESIGN.md §11 escape inventory):
 *
 *   - busy goes false->true only via the ctor's exchange(acquire); the
 *     single caller that observes false is the winner and takes _ws =
 *     shared. Every other concurrent ctor observes true and allocates
 *     a private spare, so at most ONE live lease ever aliases the
 *     shared workspace.
 *   - busy goes true->false only via the winner's dtor store(release).
 *     The release store pairs with the next winner's acquire exchange,
 *     ordering this call's workspace writes before the next call's
 *     reads — the shared workspace is handed off, never shared.
 *
 * tests/workspace_lease_test.cc races concurrent const infer() calls
 * on one chip (under TSan via the runtime label) to pin this.
 */
class WorkspaceLease
{
  public:
    // NO_THREAD_SAFETY_ANALYSIS: lock-free atomic try-acquire; the
    // mutual-exclusion argument is the class-comment invariant above.
    explicit WorkspaceLease(Workspace *shared)
        RAPIDNN_NO_THREAD_SAFETY_ANALYSIS
    {
        if (shared != nullptr &&
            !shared->busy.exchange(true, std::memory_order_acquire)) {
            _ws = shared;
        } else {
            _spare = std::make_unique<Workspace>();
            _ws = _spare.get();
        }
    }

    // NO_THREAD_SAFETY_ANALYSIS: release half of the lease protocol;
    // only the winning lease (no spare) may clear the flag.
    ~WorkspaceLease() RAPIDNN_NO_THREAD_SAFETY_ANALYSIS
    {
        if (_spare == nullptr)
            _ws->busy.store(false, std::memory_order_release);
    }

    WorkspaceLease(const WorkspaceLease &) = delete;
    WorkspaceLease &operator=(const WorkspaceLease &) = delete;

    Workspace &get() { return *_ws; }

  private:
    Workspace *_ws;
    std::unique_ptr<Workspace> _spare;
};

/**
 * Count the RNA blocks a model occupies (one per compute neuron,
 * recursing through residual inner stacks).
 */
size_t
countOccupiedRnas(const std::vector<RLayer> &layers)
{
    size_t n = 0;
    for (const auto &layer : layers) {
        if (layer.kind == RLayerKind::Dense ||
            layer.kind == RLayerKind::Conv ||
            layer.kind == RLayerKind::Recurrent)
            n += layer.outCount;
        else if (layer.kind == RLayerKind::Residual)
            n += countOccupiedRnas(layer.inner);
    }
    return n;
}

} // namespace

void
buildConvGatherPlan(ConvGatherPlan &plan, const composer::RLayer &layer,
                    size_t inC, size_t h, size_t w)
{
    const size_t k = layer.kernel;
    const size_t oh = layer.samePadding ? h : h - k + 1;
    const size_t ow = layer.samePadding ? w : w - k + 1;
    const long off = layer.samePadding ? -long(k / 2) : 0;

    plan.inC = inC;
    plan.inH = h;
    plan.inW = w;
    plan.outH = oh;
    plan.outW = ow;
    std::vector<uint32_t> start(oh * ow + 1, 0);
    std::vector<uint32_t> weightIdx;
    std::vector<uint32_t> inputIdx;
    weightIdx.reserve(oh * ow * inC * k * k);
    inputIdx.reserve(oh * ow * inC * k * k);

    for (size_t y = 0; y < oh; ++y)
        for (size_t x = 0; x < ow; ++x) {
            for (size_t ic = 0; ic < inC; ++ic)
                for (size_t ky = 0; ky < k; ++ky) {
                    const long iy = long(y) + long(ky) + off;
                    if (iy < 0 || iy >= long(h))
                        continue;
                    for (size_t kx = 0; kx < k; ++kx) {
                        const long ix = long(x) + long(kx) + off;
                        if (ix < 0 || ix >= long(w))
                            continue;
                        weightIdx.push_back(static_cast<uint32_t>(
                            (ic * k + ky) * k + kx));
                        inputIdx.push_back(static_cast<uint32_t>(
                            (ic * h + size_t(iy)) * w + size_t(ix)));
                    }
                }
            start[y * ow + x + 1] =
                static_cast<uint32_t>(weightIdx.size());
        }
    plan.start = std::move(start);
    plan.weightIdx = std::move(weightIdx);
    plan.inputIdx = std::move(inputIdx);
}

void
Chip::configure(const composer::ReinterpretedModel &model)
{
    _model = &model;
    // Resolve the SIMD kernel variant once per chip: explicit config
    // beats the RAPIDNN_SIMD environment override beats the best
    // variant this build + host supports.
    _kops = kernels::opsFor(kernels::resolve(_config.simd));
    telemetry::Registry::global()
        .gauge("rapidnn_kernel_variant",
               "Selected SIMD kernel variant (1 = active for this "
               "process's most recent Chip::configure)",
               std::string("variant=\"")
                   + (_kops ? _kops->name : "off") + "\"")
        .set(1);
    auto set = std::make_shared<ContextSet>();
    configureLayers(*set, model.layers());
    _contexts = std::move(set);
    buildWorkspace();
}

void
Chip::configureLayers(ContextSet &set,
                      const std::vector<RLayer> &layers)
{
    for (const RLayer &layer : layers) {
        if (layer.kind == RLayerKind::Dense ||
            layer.kind == RLayerKind::Conv ||
            layer.kind == RLayerKind::Recurrent) {
            set.byLayer[&layer] = set.contexts.size();
            set.contexts.push_back(std::make_unique<RnaLayerContext>(
                layer, _config.cost, _config.searchMode, _kops));
        } else if (layer.kind == RLayerKind::Residual) {
            configureLayers(set, layer.inner);
        }
    }
}

void
Chip::buildWorkspace()
{
    // Build the private inference workspace now so steady-state
    // infer() calls never grow a buffer.
    _workspace = std::make_unique<Workspace>();
    Workspace &ws = *_workspace;
    const auto &ctxs = _contexts->contexts;
    ws.convPlans.resize(ctxs.size());
    for (const auto &ctx : ctxs)
        ctx->prepareWorkspace(ws);

    // Blob-loaded models carry precomputed gather plans for the
    // canonical input shape; install them as zero-copy views so the
    // first infer skips the plan build entirely.
    for (size_t i = 0; i < ctxs.size(); ++i) {
        const RLayer &layer = ctxs[i]->layer();
        if (!layer.convPlan.has_value())
            continue;
        const composer::RLayer::ConvPlanData &p = *layer.convPlan;
        ConvGatherPlan &plan = ws.convPlans[i];
        plan.inC = p.inC;
        plan.inH = p.inH;
        plan.inW = p.inW;
        plan.outH = p.outH;
        plan.outW = p.outW;
        plan.start = p.start;
        plan.weightIdx = p.weightIdx;
        plan.inputIdx = p.inputIdx;
    }

    // Seed the activation-tensor pools from the model's canonical
    // input shape: size every recycled buffer to the widest tensor
    // that flows through the layer chain, so the serve path performs
    // no buffer growth. Models without a recorded shape (legacy text
    // files) warm the pools up on the first infer instead.
    const nn::Shape &shape = _model->canonicalInputShape();
    if (!shape.empty()) {
        size_t maxElems = 1;
        for (size_t d : shape)
            maxElems *= d;
        composer::walkLayerShapes(
            _model->layers(), shape,
            [&](const RLayer &layer, const nn::Shape &,
                const nn::Shape &out) {
                size_t n = 1;
                for (size_t d : out)
                    n *= d;
                maxElems = std::max(maxElems, n);
                if (layer.kind == RLayerKind::MaxPool) {
                    const size_t win =
                        layer.poolWindow * layer.poolWindow;
                    if (ws.gatherX.size() < win)
                        ws.gatherX.resize(win);
                }
            });
        // Kernel-path buffers scale with the widest activation tensor;
        // warm them now so steady-state inference never grows one
        // (growth would also discard AlignedVec contents).
        if (_kops != nullptr) {
            ws.act8.ensure(maxElems);
            ws.h8.ensure(maxElems);
            ws.vals.ensure(maxElems);
            ws.amKeys.ensure(maxElems);
            ws.amRows.ensure(maxElems);
        }
        // Batch-strided arenas for inferBatch, sized for maxBatch
        // lanes (batch 1 leaves them empty; larger batches grow them
        // on first use). The pools below also scale with maxBatch so
        // a whole batch's activation tensors recycle without growth.
        const size_t mb = std::max<size_t>(1, _config.maxBatch);
        if (_kops != nullptr && mb > 1) {
            size_t maxFanIn = 1;
            size_t maxHidden = 0;
            size_t windowMax = 0;
            for (const auto &ctx : ctxs) {
                const RLayer &layer = ctx->layer();
                if (layer.kind == RLayerKind::Conv) {
                    windowMax = std::max(windowMax,
                                         layer.weightCodes[0].size());
                    maxFanIn = std::max(maxFanIn,
                                        layer.weightCodes[0].size());
                } else {
                    maxFanIn = std::max(maxFanIn, layer.inCount);
                }
                if (layer.kind == RLayerKind::Recurrent) {
                    maxHidden = std::max(maxHidden, layer.outCount);
                    maxFanIn = std::max(maxFanIn, layer.outCount);
                }
            }
            ws.actB8.ensure(mb * maxElems);
            ws.valsB.ensure(mb * maxElems);
            ws.codesB.ensure(mb * maxElems);
            ws.keysB.ensure(mb * maxFanIn);
            ws.amKeys.ensure(mb * maxElems);
            ws.amRows.ensure(mb * maxElems);
            ws.neuronCostsB.resize(mb * maxElems);
            if (windowMax > 0)
                ws.gx8B.ensure(mb * windowMax);
            if (maxHidden > 0) {
                ws.h8B.ensure(mb * maxHidden);
                ws.keysHB.ensure(mb * maxFanIn);
                ws.hCodesB.reserve(mb * maxHidden);
                ws.hNextB.reserve(mb * maxHidden);
                ws.hRawB.reserve(mb * maxHidden);
                ws.hRawNextB.reserve(mb * maxHidden);
            }
            ws.lanePtrsX.reserve(mb);
            ws.lanePtrsH.reserve(mb);
            ws.stepWorstB.reserve(mb);
        }
        for (size_t i = 0; i < 4 * mb; ++i) {
            std::vector<uint16_t> buf;
            buf.reserve(maxElems);
            ws.codePool.push_back(std::move(buf));
        }
        for (size_t i = 0; i < 2 * mb; ++i) {
            std::vector<double> buf;
            buf.reserve(maxElems);
            ws.rawPool.push_back(std::move(buf));
        }
    }

    // Intra-op lanes: one private scratch slice per pool lane, sized
    // now so sharded inference stays allocation-free. Per-neuron cost
    // slots for conv layers grow on the first infer (output H/W are
    // unknown until then), like the conv gather plans.
    if (_config.numThreads > 1) {
        ws.ensureLanes(_config.numThreads);
        size_t maxNeurons = 1;
        for (const auto &ctx : ctxs) {
            for (auto &lane : ws.lanes)
                ctx->prepareScratch(lane);
            maxNeurons = std::max(maxNeurons, ctx->layer().outCount);
        }
        ws.neuronCosts.resize(maxNeurons);
    }
}

Chip
Chip::clone() const
{
    // Replicas share the immutable layer contexts (product tables, AM
    // blocks, transposed columns) and only build a private workspace:
    // instantiation cost is O(activation buffers), not O(model).
    Chip replica(_config);
    replica._model = _model;
    replica._kops = _kops;
    replica._contexts = _contexts;
    if (_contexts != nullptr)
        replica.buildWorkspace();
    return replica;
}

Chip::LayerRun
Chip::runLayer(const RLayer &layer, const EncodedTensor &in,
               bool lastCompute, Workspace &ws, size_t threads) const
{
    LayerRun run{};
    run.stageCycles = 0;
    // Only the fast path shards; the reference path stays serial as
    // the bitwise comparison baseline.
    const bool intraOp = threads > 1 && _config.fastPath;

    switch (layer.kind) {
      case RLayerKind::Dense: {
        const RnaLayerContext &ctx =
            *_contexts->contexts[_contexts->byLayer.at(&layer)];
        run.output.shape = {layer.outCount};
        if (!layer.outputEncoder.empty()) {
            run.output.codes = ws.takeCodes();
            run.output.codes.assign(layer.outCount, 0);
        }
        if (lastCompute) {
            run.raw = ws.takeRaw();
            run.raw.assign(layer.outCount, 0.0);
        }

        const auto &codes = layer.weightCodes[0];
        uint64_t worstNeuron = 0;
        const bool kernel = _kops != nullptr && _config.fastPath;
        if (kernel) {
            // Kernel path: phase-split execution. Phase A runs every
            // neuron's weighted accumulation through the SIMD pair-key
            // tally (packed uint8 codes when the codebooks fit, fused
            // 16-bit keys otherwise); phases B/C batch the activation
            // and encoding AM lookups over contiguous value ranges.
            // Per-neuron costs land in ws.neuronCosts and the flat
            // reduction below replays the serial accumulation order,
            // so results stay bitwise identical to evaluateFast().
            const bool packed = ctx.packed();
            const uint8_t *x8 = nullptr;
            if (packed) {
                ws.act8.ensure(layer.inCount);
                _kops->narrow(in.codes.data(), layer.inCount,
                              ws.act8.data());
                x8 = ws.act8.data();
            }
            ws.vals.ensure(layer.outCount);
            if (ws.neuronCosts.size() < layer.outCount)
                ws.neuronCosts.resize(layer.outCount);
            auto evalRange = [&](size_t begin, size_t end,
                                 AccumScratch &accum, uint32_t *keys,
                                 uint32_t *rows) {
                for (size_t j = begin; j < end; ++j) {
                    const AccumResult a =
                        packed ? ctx.accumulatePacked(
                                     0, ctx.denseColumn8(j), x8,
                                     layer.inCount, layer.bias[j],
                                     accum)
                               : ctx.accumulateKeyed(
                                     0, ctx.denseColumn(j),
                                     in.codes.data(), layer.inCount,
                                     layer.bias[j], accum);
                    ws.vals[j] = a.value;
                    ws.neuronCosts[j] = NeuronCost{};
                    ws.neuronCosts[j].weightedAccum = a.cost.total();
                }
                const size_t n = end - begin;
                double *vals = ws.vals.data() + begin;
                ctx.activateBatch(vals, vals, n, keys, rows);
                if (ctx.hasActivation())
                    for (size_t j = begin; j < end; ++j)
                        ws.neuronCosts[j].activation +=
                            ctx.activationQueryCost();
                if (ctx.hasEncoder()) {
                    ctx.encodeBatch(vals, n, keys, rows,
                                    run.output.codes.data() + begin);
                    for (size_t j = begin; j < end; ++j)
                        ws.neuronCosts[j].encoding +=
                            ctx.encodingQueryCost();
                }
                if (lastCompute)
                    for (size_t j = begin; j < end; ++j)
                        run.raw[j] = ws.vals[j];
            };
            if (intraOp) {
                ws.ensureLanes(threads);
                for (auto &lane : ws.lanes) {
                    lane.amKeys.ensure(layer.outCount);
                    lane.amRows.ensure(layer.outCount);
                }
                const size_t shards = shardCount(layer.outCount);
                TaskPool::shared().run(
                    shards, threads, [&](size_t shard, size_t lane) {
                        const auto [begin, end] =
                            shardRange(layer.outCount, shard, shards);
                        IntraOpScratch &sc = ws.lanes[lane];
                        evalRange(begin, end, sc.accum,
                                  sc.amKeys.data(), sc.amRows.data());
                    });
            } else {
                ws.amKeys.ensure(layer.outCount);
                ws.amRows.ensure(layer.outCount);
                evalRange(0, layer.outCount, ws.accum,
                          ws.amKeys.data(), ws.amRows.data());
            }
            for (size_t j = 0; j < layer.outCount; ++j) {
                run.cost += ws.neuronCosts[j];
                worstNeuron = std::max(
                    worstNeuron, ws.neuronCosts[j].total().cycles);
            }
        } else if (intraOp) {
            // Shard the output-neuron loop over the fixed grid. Each
            // shard writes disjoint code/raw/cost slots with its
            // lane's private scratch; the flat reduction below then
            // replays the serial accumulation order exactly.
            ws.ensureLanes(threads);
            if (ws.neuronCosts.size() < layer.outCount)
                ws.neuronCosts.resize(layer.outCount);
            const size_t shards = shardCount(layer.outCount);
            TaskPool::shared().run(
                shards, threads, [&](size_t shard, size_t lane) {
                    const auto [begin, end] =
                        shardRange(layer.outCount, shard, shards);
                    AccumScratch &scratch = ws.lanes[lane].accum;
                    for (size_t j = begin; j < end; ++j) {
                        NeuronResult r = ctx.evaluateFast(
                            0, ctx.denseColumn(j), in.codes.data(),
                            layer.inCount, layer.bias[j], scratch);
                        ws.neuronCosts[j] = r.cost;
                        if (r.encoded)
                            run.output.codes[j] = r.code;
                        if (lastCompute)
                            run.raw[j] = r.rawValue;
                    }
                });
            for (size_t j = 0; j < layer.outCount; ++j) {
                run.cost += ws.neuronCosts[j];
                worstNeuron = std::max(
                    worstNeuron, ws.neuronCosts[j].total().cycles);
            }
        } else {
        std::vector<uint16_t> wcol;
        if (!_config.fastPath)
            wcol.resize(layer.inCount);
        for (size_t j = 0; j < layer.outCount; ++j) {
            NeuronResult r;
            if (_config.fastPath) {
                // Transposed columns + direct input view: no gather,
                // no allocation.
                r = ctx.evaluateFast(0, ctx.denseColumn(j),
                                     in.codes.data(), layer.inCount,
                                     layer.bias[j], ws.accum);
            } else {
                for (size_t i = 0; i < layer.inCount; ++i)
                    wcol[i] = codes[i * layer.outCount + j];
                r = ctx.evaluate(0, wcol, in.codes, layer.bias[j]);
            }
            run.cost += r.cost;
            worstNeuron = std::max(worstNeuron, r.cost.total().cycles);
            if (r.encoded)
                run.output.codes[j] = r.code;
            if (lastCompute)
                run.raw[j] = r.rawValue;
        }
        }
        // All neurons run on parallel RNA blocks; waves when the layer
        // exceeds the physical block count (or when sharing serializes).
        const double effective =
            static_cast<double>(_config.totalRnas())
            * (1.0 - _config.rnaSharing);
        const size_t waves = static_cast<size_t>(std::ceil(
            static_cast<double>(layer.outCount)
            / std::max(1.0, effective)));
        run.stageCycles = worstNeuron * waves;
        break;
      }
      case RLayerKind::Conv: {
        const RnaLayerContext &ctx =
            *_contexts->contexts[_contexts->byLayer.at(&layer)];
        RAPIDNN_ASSERT(in.shape.size() == 3, "conv needs [C, H, W]");
        const size_t inC = in.shape[0];
        const size_t h = in.shape[1], w = in.shape[2];
        const size_t k = layer.kernel;
        const size_t oh = layer.samePadding ? h : h - k + 1;
        const size_t ow = layer.samePadding ? w : w - k + 1;
        const long off = layer.samePadding ? -long(k / 2) : 0;

        run.output.shape = {layer.outCount, oh, ow};
        if (!layer.outputEncoder.empty()) {
            run.output.codes = ws.takeCodes();
            run.output.codes.assign(layer.outCount * oh * ow, 0);
        }
        if (lastCompute) {
            run.raw = ws.takeRaw();
            run.raw.assign(layer.outCount * oh * ow, 0.0);
        }

        // Fast path: the receptive-field gather per output position is
        // compiled once per input shape into flat index maps, then the
        // hot loop is two indexed copies plus the engine run. Plans for
        // the canonical input shape are pre-installed at configure
        // time (precomputed ones straight out of the model blob).
        ConvGatherPlan *plan = nullptr;
        if (_config.fastPath) {
            plan = &ws.convPlans[_contexts->byLayer.at(&layer)];
            if (!plan->matches(inC, h, w))
                buildConvGatherPlan(*plan, layer, inC, h, w);
            const size_t windowMax = layer.weightCodes[0].size();
            if (ws.gatherW.size() < windowMax)
                ws.gatherW.resize(windowMax);
            if (ws.gatherX.size() < windowMax)
                ws.gatherX.resize(windowMax);
        }

        uint64_t worstNeuron = 0;
        const size_t flatNeurons = layer.outCount * oh * ow;
        const size_t positions = oh * ow;
        // Conv kernel path needs the compiled plan and packed codes
        // (conv codebooks are small in practice; 16-bit layers fall
        // back to the scalar gather loops).
        const bool kernel =
            _kops != nullptr && plan != nullptr && ctx.packed();
        const size_t fullWindow = layer.inCount;  // inC * k * k
        if (kernel && !intraOp) {
            // Position-major phase A: narrow the input map to uint8
            // once, then for each output position gather its window a
            // single time and sweep every output channel over it —
            // interior (unclipped) windows use the channel's packed
            // weights directly because their weight-index map is the
            // identity. Phases B/C then batch the AM lookups per
            // channel over the contiguous position range. The flat
            // (oc, p) cost reduction below replays the serial
            // accumulation order, so results stay bitwise identical.
            ws.act8.ensure(in.codes.size());
            _kops->narrow(in.codes.data(), in.codes.size(),
                          ws.act8.data());
            const size_t windowMax = layer.weightCodes[0].size();
            ws.gx8.ensure(windowMax);
            ws.gw8.ensure(windowMax);
            ws.vals.ensure(flatNeurons);
            ws.amKeys.ensure(positions);
            ws.amRows.ensure(positions);
            if (ws.neuronCosts.size() < flatNeurons)
                ws.neuronCosts.resize(flatNeurons);
            for (size_t p = 0; p < positions; ++p) {
                const uint32_t s0 = plan->start[p];
                const size_t n = plan->start[p + 1] - s0;
                _kops->gather8(ws.act8.data(),
                               plan->inputIdx.data() + s0, n,
                               ws.gx8.data());
                for (size_t oc = 0; oc < layer.outCount; ++oc) {
                    const uint8_t *wp = ctx.convChannel8(oc);
                    if (n != fullWindow) {
                        for (size_t s = 0; s < n; ++s)
                            ws.gw8[s] = wp[plan->weightIdx[s0 + s]];
                        wp = ws.gw8.data();
                    }
                    const AccumResult a = ctx.accumulatePacked(
                        oc, wp, ws.gx8.data(), n, layer.bias[oc],
                        ws.accum);
                    const size_t oidx = oc * positions + p;
                    ws.vals[oidx] = a.value;
                    ws.neuronCosts[oidx] = NeuronCost{};
                    ws.neuronCosts[oidx].weightedAccum = a.cost.total();
                }
            }
            for (size_t oc = 0; oc < layer.outCount; ++oc) {
                double *vals = ws.vals.data() + oc * positions;
                ctx.activateBatch(vals, vals, positions,
                                  ws.amKeys.data(), ws.amRows.data());
                if (ctx.hasActivation())
                    for (size_t p = 0; p < positions; ++p)
                        ws.neuronCosts[oc * positions + p].activation +=
                            ctx.activationQueryCost();
                if (ctx.hasEncoder()) {
                    ctx.encodeBatch(
                        vals, positions, ws.amKeys.data(),
                        ws.amRows.data(),
                        run.output.codes.data() + oc * positions);
                    for (size_t p = 0; p < positions; ++p)
                        ws.neuronCosts[oc * positions + p].encoding +=
                            ctx.encodingQueryCost();
                }
                if (lastCompute)
                    for (size_t p = 0; p < positions; ++p)
                        run.raw[oc * positions + p] = vals[p];
            }
            for (size_t oidx = 0; oidx < flatNeurons; ++oidx) {
                run.cost += ws.neuronCosts[oidx];
                worstNeuron = std::max(
                    worstNeuron, ws.neuronCosts[oidx].total().cycles);
            }
        } else if (kernel) {
            // Sharded kernel path keeps the per-neuron shape (shards
            // split the flat (oc, y, x) grid, so position-major
            // batching would straddle shard boundaries); each lane
            // gathers packed windows into private aligned buffers.
            ws.act8.ensure(in.codes.size());
            _kops->narrow(in.codes.data(), in.codes.size(),
                          ws.act8.data());
            ws.ensureLanes(threads);
            if (ws.neuronCosts.size() < flatNeurons)
                ws.neuronCosts.resize(flatNeurons);
            const size_t windowMax = layer.weightCodes[0].size();
            for (auto &lane : ws.lanes) {
                lane.gx8.ensure(windowMax);
                lane.gw8.ensure(windowMax);
            }
            const size_t shards = shardCount(flatNeurons);
            TaskPool::shared().run(
                shards, threads, [&](size_t shard, size_t lane) {
                    const auto [begin, end] =
                        shardRange(flatNeurons, shard, shards);
                    IntraOpScratch &sc = ws.lanes[lane];
                    for (size_t oidx = begin; oidx < end; ++oidx) {
                        const size_t oc = oidx / positions;
                        const size_t p = oidx % positions;
                        const uint32_t s0 = plan->start[p];
                        const size_t n = plan->start[p + 1] - s0;
                        _kops->gather8(ws.act8.data(),
                                       plan->inputIdx.data() + s0, n,
                                       sc.gx8.data());
                        const uint8_t *wp = ctx.convChannel8(oc);
                        if (n != fullWindow) {
                            for (size_t s = 0; s < n; ++s)
                                sc.gw8[s] =
                                    wp[plan->weightIdx[s0 + s]];
                            wp = sc.gw8.data();
                        }
                        NeuronResult r = ctx.evaluatePacked(
                            oc, wp, sc.gx8.data(), n, layer.bias[oc],
                            sc.accum);
                        ws.neuronCosts[oidx] = r.cost;
                        if (r.encoded)
                            run.output.codes[oidx] = r.code;
                        if (lastCompute)
                            run.raw[oidx] = r.rawValue;
                    }
                });
            for (size_t oidx = 0; oidx < flatNeurons; ++oidx) {
                run.cost += ws.neuronCosts[oidx];
                worstNeuron = std::max(
                    worstNeuron, ws.neuronCosts[oidx].total().cycles);
            }
        } else if (intraOp) {
            // Shard over the flat neuron index (oc, y, x) so narrow
            // feature maps still spread across lanes. Each shard's
            // lane gathers into private buffers and writes disjoint
            // code/raw/cost slots; the flat reduction below replays
            // the serial (oc, y, x) accumulation order exactly.
            ws.ensureLanes(threads);
            if (ws.neuronCosts.size() < flatNeurons)
                ws.neuronCosts.resize(flatNeurons);
            const size_t windowMax = layer.weightCodes[0].size();
            for (auto &lane : ws.lanes) {
                if (lane.gatherW.size() < windowMax)
                    lane.gatherW.resize(windowMax);
                if (lane.gatherX.size() < windowMax)
                    lane.gatherX.resize(windowMax);
            }
            const size_t shards = shardCount(flatNeurons);
            TaskPool::shared().run(
                shards, threads, [&](size_t shard, size_t lane) {
                    const auto [begin, end] =
                        shardRange(flatNeurons, shard, shards);
                    IntraOpScratch &sc = ws.lanes[lane];
                    for (size_t oidx = begin; oidx < end; ++oidx) {
                        const size_t oc = oidx / (oh * ow);
                        const size_t p = oidx % (oh * ow);
                        const auto &codes = layer.weightCodes[oc];
                        const uint32_t s0 = plan->start[p];
                        const size_t n = plan->start[p + 1] - s0;
                        for (size_t s = 0; s < n; ++s) {
                            sc.gatherW[s] =
                                codes[plan->weightIdx[s0 + s]];
                            sc.gatherX[s] =
                                in.codes[plan->inputIdx[s0 + s]];
                        }
                        NeuronResult r = ctx.evaluateFast(
                            oc, sc.gatherW.data(), sc.gatherX.data(),
                            n, layer.bias[oc], sc.accum);
                        ws.neuronCosts[oidx] = r.cost;
                        if (r.encoded)
                            run.output.codes[oidx] = r.code;
                        if (lastCompute)
                            run.raw[oidx] = r.rawValue;
                    }
                });
            for (size_t oidx = 0; oidx < flatNeurons; ++oidx) {
                run.cost += ws.neuronCosts[oidx];
                worstNeuron = std::max(
                    worstNeuron, ws.neuronCosts[oidx].total().cycles);
            }
        } else {
        std::vector<uint16_t> wcodes, xcodes;
        for (size_t oc = 0; oc < layer.outCount; ++oc) {
            const auto &codes = layer.weightCodes[oc];
            for (size_t y = 0; y < oh; ++y) {
                for (size_t x = 0; x < ow; ++x) {
                    NeuronResult r;
                    if (plan != nullptr) {
                        const size_t p = y * ow + x;
                        const uint32_t s0 = plan->start[p];
                        const size_t n = plan->start[p + 1] - s0;
                        for (size_t s = 0; s < n; ++s) {
                            ws.gatherW[s] =
                                codes[plan->weightIdx[s0 + s]];
                            ws.gatherX[s] =
                                in.codes[plan->inputIdx[s0 + s]];
                        }
                        r = ctx.evaluateFast(oc, ws.gatherW.data(),
                                             ws.gatherX.data(), n,
                                             layer.bias[oc], ws.accum);
                    } else {
                        wcodes.clear();
                        xcodes.clear();
                        for (size_t ic = 0; ic < inC; ++ic)
                            for (size_t ky = 0; ky < k; ++ky) {
                                const long iy =
                                    long(y) + long(ky) + off;
                                if (iy < 0 || iy >= long(h))
                                    continue;
                                for (size_t kx = 0; kx < k; ++kx) {
                                    const long ix =
                                        long(x) + long(kx) + off;
                                    if (ix < 0 || ix >= long(w))
                                        continue;
                                    wcodes.push_back(
                                        codes[(ic * k + ky) * k + kx]);
                                    xcodes.push_back(
                                        in.codes[(ic * h + size_t(iy))
                                                 * w + size_t(ix)]);
                                }
                            }
                        r = ctx.evaluate(oc, wcodes, xcodes,
                                         layer.bias[oc]);
                    }
                    run.cost += r.cost;
                    worstNeuron =
                        std::max(worstNeuron, r.cost.total().cycles);
                    const size_t oidx = (oc * oh + y) * ow + x;
                    if (r.encoded)
                        run.output.codes[oidx] = r.code;
                    if (lastCompute)
                        run.raw[oidx] = r.rawValue;
                }
            }
        }
        }
        const double effective =
            static_cast<double>(_config.totalRnas())
            * (1.0 - _config.rnaSharing);
        const size_t waves = static_cast<size_t>(std::ceil(
            static_cast<double>(flatNeurons)
            / std::max(1.0, effective)));
        run.stageCycles = worstNeuron * waves;
        break;
      }
      case RLayerKind::MaxPool: {
        RAPIDNN_ASSERT(in.shape.size() == 3, "maxpool needs [C, H, W]");
        const size_t ch = in.shape[0];
        const size_t h = in.shape[1], w = in.shape[2];
        const size_t win = layer.poolWindow;
        const size_t oh = h / win, ow = w / win;

        run.output.shape = {ch, oh, ow};
        run.output.codes = ws.takeCodes();
        run.output.codes.assign(ch * oh * ow, 0);
        nvm::OpCost poolCost;
        uint64_t worst = 0;
        // Fast path gathers windows into the workspace buffer (sized at
        // configure time); the reference path keeps its own vector as
        // the allocation baseline.
        std::vector<uint16_t> windowLocal;
        if (_config.fastPath) {
            if (ws.gatherX.size() < win * win)
                ws.gatherX.resize(win * win);
        } else {
            windowLocal.resize(win * win);
        }
        uint16_t *window = _config.fastPath ? ws.gatherX.data()
                                            : windowLocal.data();
        for (size_t c = 0; c < ch; ++c)
            for (size_t y = 0; y < oh; ++y)
                for (size_t x = 0; x < ow; ++x) {
                    size_t wi = 0;
                    for (size_t ky = 0; ky < win; ++ky)
                        for (size_t kx = 0; kx < win; ++kx)
                            window[wi++] = in.codes[
                                (c * h + y * win + ky) * w + x * win
                                + kx];
                    nvm::OpCost one;
                    // Fast path skips the per-window Ndcam object but
                    // charges the identical load + MAX-search cost.
                    run.output.codes[(c * oh + y) * ow + x] =
                        _config.fastPath
                            ? RnaLayerContext::poolMaxFast(
                                  window, win * win,
                                  _config.cost, one, _kops)
                            : RnaLayerContext::poolMax(
                                  windowLocal, _config.cost, one);
                    worst = std::max(worst, one.cycles);
                    poolCost += one;
                }
        run.cost.pooling = poolCost;
        // Pooling windows run on parallel AM blocks.
        const size_t windows = ch * oh * ow;
        const size_t waves = static_cast<size_t>(std::ceil(
            static_cast<double>(windows)
            / static_cast<double>(_config.totalRnas())));
        run.stageCycles = worst * waves;
        break;
      }
      case RLayerKind::AvgPool: {
        // Average pooling accumulates in the crossbar (division folded
        // offline); modelled as one small in-memory addition per window.
        RAPIDNN_ASSERT(in.shape.size() == 3, "avgpool needs [C, H, W]");
        const size_t ch = in.shape[0];
        const size_t h = in.shape[1], w = in.shape[2];
        const size_t win = layer.poolWindow;
        const size_t oh = h / win, ow = w / win;
        const double norm = 1.0 / double(win * win);

        run.output.shape = {ch, oh, ow};
        run.output.codes = ws.takeCodes();
        run.output.codes.assign(ch * oh * ow, 0);
        nvm::OpCost poolCost;
        uint64_t worst = 0;
        for (size_t c = 0; c < ch; ++c)
            for (size_t y = 0; y < oh; ++y)
                for (size_t x = 0; x < ow; ++x) {
                    // Fast path reuses the workspace addend buffer
                    // instead of allocating one per window.
                    std::vector<int64_t> local;
                    std::vector<int64_t> &addends =
                        _config.fastPath ? ws.addends : local;
                    addends.clear();
                    AccumFormat format;
                    for (size_t ky = 0; ky < win; ++ky)
                        for (size_t kx = 0; kx < win; ++kx) {
                            const size_t idx =
                                (c * h + y * win + ky) * w + x * win
                                + kx;
                            addends.push_back(format.toFixed(
                                layer.inputCodebook.value(
                                    in.codes[idx]) * norm));
                        }
                    nvm::OpCost one;
                    const int64_t sum = nvm::CrossbarArray::addMany(
                        addends, format.accumulatorBits, _config.cost,
                        one);
                    run.output.codes[(c * oh + y) * ow + x] =
                        static_cast<uint16_t>(
                            layer.inputCodebook.encode(
                                format.toReal(sum)));
                    worst = std::max(worst, one.cycles);
                    poolCost += one;
                }
        run.cost.pooling = poolCost;
        const size_t windows = ch * oh * ow;
        const size_t waves = static_cast<size_t>(std::ceil(
            static_cast<double>(windows)
            / static_cast<double>(_config.totalRnas())));
        run.stageCycles = worst * waves;
        break;
      }
      case RLayerKind::Flatten: {
        run.output.shape = {in.codes.size()};
        run.output.codes = ws.takeCodes();
        run.output.codes.assign(in.codes.begin(), in.codes.end());
        run.stageCycles = 0;
        break;
      }
      case RLayerKind::Recurrent: {
        // Elman cell: the neuron's previous encoded output loops back
        // through the input FIFO; each unrolled step runs both
        // operand paths on the RNA (paper Section 4.3).
        const RnaLayerContext &ctx =
            *_contexts->contexts[_contexts->byLayer.at(&layer)];
        const size_t hidden = layer.outCount;
        const size_t features = layer.inCount;
        RAPIDNN_ASSERT(in.codes.size() == layer.steps * features,
                       "recurrent layer code count mismatch");

        nvm::OpCost zeroEncode;
        const uint16_t zeroCode = ctx.encodeState(0.0, zeroEncode);
        run.cost.encoding += zeroEncode;

        std::vector<double> hRawLocal;
        uint64_t stepWorst = 0;
        // Recurrent kernel path: both operand paths must pack (the
        // feedback codebook too). The whole input sequence narrows to
        // uint8 once; the hidden state re-narrows per step (it is
        // rewritten by the step swap).
        const bool kernel = _kops != nullptr && _config.fastPath &&
                            ctx.packedRecurrent();
        if (kernel) {
            ws.act8.ensure(in.codes.size());
            _kops->narrow(in.codes.data(), in.codes.size(),
                          ws.act8.data());
            ws.h8.ensure(hidden);
        }
        if (intraOp) {
            // Steps stay serial (the feedback hazard); within a step
            // the hidden-neuron loop shards over the fixed grid. Each
            // shard reads the frozen previous-state buffer and writes
            // disjoint hNext/hRawNext/cost slots; the per-step flat
            // reduction replays the serial order.
            ws.ensureLanes(threads);
            if (ws.neuronCosts.size() < hidden)
                ws.neuronCosts.resize(hidden);
            ws.hCodes.assign(hidden, zeroCode);
            ws.hRaw.assign(hidden, 0.0);
            ws.hNext.resize(hidden);
            ws.hRawNext.resize(hidden);
            const size_t shards = shardCount(hidden);
            for (size_t t = 0; t < layer.steps; ++t) {
                const uint16_t *xStep = in.codes.data() + t * features;
                const uint8_t *xStep8 = nullptr;
                if (kernel) {
                    // Serial per-step narrow of the frozen previous
                    // state, before the parallel region.
                    _kops->narrow(ws.hCodes.data(), hidden,
                                  ws.h8.data());
                    xStep8 = ws.act8.data() + t * features;
                }
                TaskPool::shared().run(
                    shards, threads, [&](size_t shard, size_t lane) {
                        const auto [begin, end] =
                            shardRange(hidden, shard, shards);
                        AccumScratch &scratch = ws.lanes[lane].accum;
                        for (size_t h = begin; h < end; ++h) {
                            NeuronResult r =
                                kernel
                                    ? ctx.evaluateRecurrentStepPacked(
                                          ctx.recurrentXColumn8(h),
                                          xStep8, features,
                                          ctx.recurrentHColumn8(h),
                                          ws.h8.data(), hidden,
                                          layer.bias[h], scratch)
                                    : ctx.evaluateRecurrentStepFast(
                                          ctx.recurrentXColumn(h),
                                          xStep, features,
                                          ctx.recurrentHColumn(h),
                                          ws.hCodes.data(), hidden,
                                          layer.bias[h], scratch);
                            ws.neuronCosts[h] = r.cost;
                            ws.hNext[h] = r.code;
                            ws.hRawNext[h] = r.rawValue;
                        }
                    });
                uint64_t worstNeuron = 0;
                for (size_t h = 0; h < hidden; ++h) {
                    run.cost += ws.neuronCosts[h];
                    worstNeuron = std::max(
                        worstNeuron, ws.neuronCosts[h].total().cycles);
                }
                stepWorst += worstNeuron;
                std::swap(ws.hCodes, ws.hNext);
                std::swap(ws.hRaw, ws.hRawNext);
            }
        } else if (_config.fastPath) {
            // Transposed weight columns, direct step views into the
            // input codes, and double-buffered hidden state: the step
            // loop allocates nothing.
            ws.hCodes.assign(hidden, zeroCode);
            ws.hRaw.assign(hidden, 0.0);
            ws.hNext.resize(hidden);
            ws.hRawNext.resize(hidden);
            for (size_t t = 0; t < layer.steps; ++t) {
                const uint16_t *xStep = in.codes.data() + t * features;
                const uint8_t *xStep8 = nullptr;
                if (kernel) {
                    _kops->narrow(ws.hCodes.data(), hidden,
                                  ws.h8.data());
                    xStep8 = ws.act8.data() + t * features;
                }
                uint64_t worstNeuron = 0;
                for (size_t h = 0; h < hidden; ++h) {
                    NeuronResult r =
                        kernel ? ctx.evaluateRecurrentStepPacked(
                                     ctx.recurrentXColumn8(h), xStep8,
                                     features,
                                     ctx.recurrentHColumn8(h),
                                     ws.h8.data(), hidden,
                                     layer.bias[h], ws.accum)
                               : ctx.evaluateRecurrentStepFast(
                                     ctx.recurrentXColumn(h), xStep,
                                     features,
                                     ctx.recurrentHColumn(h),
                                     ws.hCodes.data(), hidden,
                                     layer.bias[h], ws.accum);
                    run.cost += r.cost;
                    worstNeuron =
                        std::max(worstNeuron, r.cost.total().cycles);
                    ws.hNext[h] = r.code;
                    ws.hRawNext[h] = r.rawValue;
                }
                // Steps are inherently sequential (the feedback
                // hazard): neurons parallel within a step, steps
                // serialized.
                stepWorst += worstNeuron;
                std::swap(ws.hCodes, ws.hNext);
                std::swap(ws.hRaw, ws.hRawNext);
            }
        } else {
            std::vector<uint16_t> hCodes(hidden, zeroCode);
            std::vector<double> hRaw(hidden, 0.0);

            const auto &wxCodes = layer.weightCodes[0];
            const auto &whCodes = layer.stateWeightCodes[0];
            std::vector<uint16_t> wxCol(features), whCol(hidden);
            std::vector<uint16_t> xStep(features);

            for (size_t t = 0; t < layer.steps; ++t) {
                for (size_t f = 0; f < features; ++f)
                    xStep[f] = in.codes[t * features + f];
                std::vector<uint16_t> next(hidden);
                std::vector<double> nextRaw(hidden);
                uint64_t worstNeuron = 0;
                for (size_t h = 0; h < hidden; ++h) {
                    for (size_t f = 0; f < features; ++f)
                        wxCol[f] = wxCodes[f * hidden + h];
                    for (size_t hp = 0; hp < hidden; ++hp)
                        whCol[hp] = whCodes[hp * hidden + h];
                    NeuronResult r = ctx.evaluateRecurrentStep(
                        wxCol, xStep, whCol, hCodes, layer.bias[h]);
                    run.cost += r.cost;
                    worstNeuron =
                        std::max(worstNeuron, r.cost.total().cycles);
                    next[h] = r.code;
                    nextRaw[h] = r.rawValue;
                }
                // Steps are inherently sequential (the feedback
                // hazard): neurons parallel within a step, steps
                // serialized.
                stepWorst += worstNeuron;
                hCodes = std::move(next);
                hRaw = std::move(nextRaw);
            }
            hRawLocal = std::move(hRaw);
        }
        const std::vector<double> &hRaw =
            _config.fastPath ? ws.hRaw : hRawLocal;
        run.stageCycles = stepWorst;

        run.output.shape = {hidden};
        const bool last = layer.outputEncoder.empty();
        if (lastCompute) {
            run.raw = ws.takeRaw();
            run.raw.assign(hRaw.begin(), hRaw.end());
        }
        if (!last) {
            run.output.codes = ws.takeCodes();
            run.output.codes.assign(hidden, 0);
            // Re-encode the final state for the consumer layer.
            nvm::OpCost encodeCost;
            for (size_t h = 0; h < hidden; ++h)
                run.output.codes[h] = static_cast<uint16_t>(
                    layer.outputEncoder.encode(hRaw[h]));
            encodeCost += _config.cost.camSearch(
                layer.outputEncoder.entries(), 32);
            run.cost.encoding += encodeCost;
        }
        break;
      }
      case RLayerKind::Residual: {
        // Skip values wait in the input FIFO while the inner stack
        // runs; the add folds into the crossbar as one extra
        // carry-propagate stage per output lane (all lanes parallel).
        EncodedTensor value;
        value.shape = in.shape;
        value.codes = ws.takeCodes();
        value.codes.assign(in.codes.begin(), in.codes.end());
        std::vector<double> innerRaw;
        for (size_t i = 0; i < layer.inner.size(); ++i) {
            const bool lastInner = i + 1 == layer.inner.size();
            LayerRun innerRun = runLayer(layer.inner[i], value,
                                         lastInner, ws, threads);
            run.cost += innerRun.cost;
            run.stageCycles += innerRun.stageCycles;
            if (lastInner)
                innerRaw = std::move(innerRun.raw);
            std::vector<uint16_t> spent = std::move(value.codes);
            value = std::move(innerRun.output);
            ws.giveCodes(std::move(spent));
        }
        ws.giveCodes(std::move(value.codes));
        RAPIDNN_ASSERT(innerRaw.size() == in.codes.size(),
                       "residual inner stack changed shape");

        AccumFormat format;
        const nvm::CostModel &m = _config.cost;
        nvm::OpCost addCost{
            m.carryPropagateCyclesPerBit * format.accumulatorBits,
            m.norEnergyPerBit
                * double(format.accumulatorBits
                         * m.carryPropagateCyclesPerBit)
                * double(in.codes.size())};
        run.cost.weightedAccum += addCost;
        run.stageCycles += addCost.cycles;

        run.output.shape = in.shape;
        const bool last = layer.outputEncoder.empty();
        if (!last) {
            run.output.codes = ws.takeCodes();
            run.output.codes.assign(innerRaw.size(), 0);
        }
        if (lastCompute) {
            run.raw = ws.takeRaw();
            run.raw.assign(innerRaw.size(), 0.0);
        }
        for (size_t i = 0; i < innerRaw.size(); ++i) {
            // Fixed-point sum, exactly as the crossbar computes it.
            const int64_t sum = format.toFixed(innerRaw[i])
                + format.toFixed(
                      layer.inputCodebook.value(in.codes[i]));
            double summed = format.toReal(sum);
            if (layer.activation)
                summed = layer.activation->lookup(summed);
            if (lastCompute)
                run.raw[i] = summed;
            if (!last)
                run.output.codes[i] = static_cast<uint16_t>(
                    layer.outputEncoder.encode(summed));
        }
        ws.giveRaw(std::move(innerRaw));
        break;
      }
    }
    return run;
}

std::vector<double>
Chip::infer(const nn::Tensor &x, PerfReport &report) const
{
    return infer(x, report, 0);
}

std::vector<double>
Chip::infer(const nn::Tensor &x, PerfReport &report,
            size_t numThreadsOverride) const
{
    RAPIDNN_ASSERT(_model != nullptr, "chip not configured");
    // Whole-call span; layer stage spans nest under it. Inert (one
    // relaxed atomic load, no clock read) while tracing is disabled.
    RAPIDNN_TELEMETRY_SPAN("chip_infer");
    const size_t threads = std::max<size_t>(
        numThreadsOverride != 0 ? numThreadsOverride
                                : _config.numThreads,
        1);
    const auto &model = *_model;

    // Lease the shared workspace for this call; concurrent callers on
    // the same chip fall back to private spares (see WorkspaceLease).
    WorkspaceLease lease(_workspace.get());
    Workspace &ws = lease.get();
    if (ws.convPlans.size() < _contexts->contexts.size())
        ws.convPlans.resize(_contexts->contexts.size());

    // Virtual input layer: encode raw data (charged as AM searches on
    // the input-encoding block, all lanes in parallel).
    EncodedTensor enc;
    enc.shape = x.shape();
    enc.codes = ws.takeCodes();
    enc.codes.assign(x.numel(), 0);
    {
        RAPIDNN_TELEMETRY_STAGE("encoding",
                                stageHistogram("encoding"));
        for (size_t i = 0; i < x.numel(); ++i)
            enc.codes[i] = static_cast<uint16_t>(
                model.inputEncoder().encode(x[i]));
    }

    report.reset();
    InferTally tally;
    tally.inputEncode = inputEncodeCost(x.numel());
    tally.latencyCycles = tally.inputEncode.cycles;
    tally.worstStage = tally.inputEncode.cycles;
    tally.totalEnergy = tally.inputEncode.energy;

    std::vector<double> logits;
    size_t lastCompute = model.layers().size();
    for (size_t l = model.layers().size(); l-- > 0;) {
        const RLayerKind kind = model.layers()[l].kind;
        if (kind == RLayerKind::Dense || kind == RLayerKind::Conv ||
            kind == RLayerKind::Residual ||
            kind == RLayerKind::Recurrent) {
            lastCompute = l;
            break;
        }
    }

    for (size_t l = 0; l < model.layers().size(); ++l) {
        LayerRun run{};
        {
            const char *stage = stageName(model.layers()[l].kind);
            RAPIDNN_TELEMETRY_SPAN(stage, static_cast<int64_t>(l), 0,
                                   stageHistogram(stage));
            run = runLayer(model.layers()[l], enc, l == lastCompute,
                           ws, threads);
        }
        tallyLayerRun(tally, run, model.layers()[l], l == lastCompute);

        if (l == lastCompute)
            logits = std::move(run.raw);
        std::vector<uint16_t> spent = std::move(enc.codes);
        enc = std::move(run.output);
        ws.giveCodes(std::move(spent));
    }
    ws.giveCodes(std::move(enc.codes));

    finalizeReport(tally, logits.size(), report);
    return logits;
}

nvm::OpCost
Chip::inputEncodeCost(size_t numel) const
{
    nvm::OpCost inputEncode =
        _config.cost.camSearch(_model->inputEncoder().entries(), 32);
    inputEncode.energy =
        inputEncode.energy * static_cast<double>(numel);

    // Data-block traffic (paper Figure 1): the raw sample streams out
    // of the crossbar data block into the virtual-layer encoders, and
    // at the end the logits write back. Cost-only static helpers: no
    // crossbar storage is materialized on the serve path.
    inputEncode += nvm::DataBlock::streamOutCost(
        _config.cost, numel, _config.cost.rnasPerTile);
    return inputEncode;
}

void
Chip::tallyLayerRun(InferTally &t, const LayerRun &run,
                    const RLayer &layer, bool isLastCompute) const
{
    t.totals += run.cost;
    t.latencyCycles += run.stageCycles;
    t.worstStage = std::max(t.worstStage, run.stageCycles);
    t.totalEnergy += run.cost.total().energy;

    // Broadcast-buffer transfer: the layer's encoded outputs move
    // bit-serially over the tile lanes to the next layer's FIFO.
    if (!isLastCompute && !run.output.codes.empty()) {
        const uint32_t bits = layer.inputCodebook.empty()
            ? 6 : layer.inputCodebook.bits();
        const size_t lanes =
            _config.cost.rnasPerTile * _config.cost.tilesPerChip
            * _config.chips;
        const uint64_t cyclesHere = static_cast<uint64_t>(
            std::ceil(static_cast<double>(run.output.codes.size())
                      / static_cast<double>(lanes)))
            * bits;
        t.bufferCycles += cyclesHere;
        t.bufferEnergy += _config.cost.bufferBitEnergy
            * (static_cast<double>(run.output.codes.size()) * bits);
    }
}

void
Chip::finalizeReport(InferTally &t, size_t logitCount,
                     PerfReport &report) const
{
    const Time cycle = _config.cost.cyclePeriod;

    // Result write-back into the data block.
    const nvm::OpCost writeBack =
        nvm::DataBlock::writeBackCost(_config.cost, logitCount);
    t.bufferCycles += writeBack.cycles;
    t.bufferEnergy += writeBack.energy;

    t.latencyCycles += t.bufferCycles;
    t.totalEnergy += t.bufferEnergy;

    // Per-block active-power energy (the paper's Table 1 power figures
    // describe running blocks; its Figure 13 energy shares mirror the
    // block power ratio). Each busy cycle of a block draws that
    // block's power on top of the switching energies accounted above.
    const nvm::CostModel &m = _config.cost;
    const Energy accumActive =
        (m.crossbarPower.over(cycle)
         * double(t.totals.weightedAccum.cycles));
    const Energy counterActive =
        m.counterPower.over(cycle)
        * double(t.totals.weightedAccum.cycles);
    const Energy actActive =
        m.amBlockPower.over(cycle)
        * double(t.totals.activation.cycles);
    const Energy encActive =
        m.amBlockPower.over(cycle) * double(t.totals.encoding.cycles);
    const Energy poolActive =
        m.amBlockPower.over(cycle) * double(t.totals.pooling.cycles);
    t.totalEnergy += accumActive + counterActive + actActive
                   + encActive + poolActive;

    // Idle/leakage for the active window, scaled by the fraction of
    // RNA blocks this model occupies (unoccupied tiles clock gate).
    size_t occupied = countOccupiedRnas(_model->layers());
    occupied = std::max<size_t>(1,
        std::min(occupied, _config.totalRnas()));
    const double occupancy = static_cast<double>(occupied)
        / static_cast<double>(_config.totalRnas());
    const Power leakage = chipPower() * occupancy
        * _config.cost.idleLeakageFraction;
    const Energy leakEnergy =
        leakage.over(cycle * double(t.latencyCycles));
    t.totalEnergy += leakEnergy;

    report.latency = cycle * static_cast<double>(t.latencyCycles);
    report.stageTime = cycle * static_cast<double>(
        std::max<uint64_t>(t.worstStage, 1));
    report.energy = t.totalEnergy;
    report.addCategory("weighted_accum",
                       cycle * double(t.totals.weightedAccum.cycles),
                       t.totals.weightedAccum.energy + accumActive);
    report.addCategory("activation",
                       cycle * double(t.totals.activation.cycles),
                       t.totals.activation.energy + actActive);
    report.addCategory("encoding",
                       cycle * double(t.totals.encoding.cycles),
                       t.totals.encoding.energy + encActive);
    report.addCategory("pooling",
                       cycle * double(t.totals.pooling.cycles),
                       t.totals.pooling.energy + poolActive);
    report.addCategory("other",
                       cycle * double(t.bufferCycles
                                      + t.inputEncode.cycles),
                       t.bufferEnergy + t.inputEncode.energy
                           + counterActive + leakEnergy);
}

void
Chip::runLayerBatch(const RLayer &layer,
                    const std::vector<EncodedTensor> &ins,
                    bool lastCompute, Workspace &ws, size_t threads,
                    std::vector<LayerRun> &runs) const
{
    const size_t lanes = ins.size();
    const bool intraOp = threads > 1 && _config.fastPath;
    const bool kernel = _kops != nullptr && _config.fastPath;
    bool sameShape = true;
    for (size_t L = 1; L < lanes; ++L)
        sameShape = sameShape && ins[L].shape == ins[0].shape
                 && ins[L].codes.size() == ins[0].codes.size();

    // Per-lane fallback: sequential runLayer calls in lane order are
    // trivially identical to sequential infer() calls (the workspace
    // is reset-per-use state, not carried data).
    auto perLane = [&] {
        for (size_t L = 0; L < lanes; ++L)
            runs[L] = runLayer(layer, ins[L], lastCompute, ws,
                               threads);
    };

    // RNA wave count, identical to runLayer's.
    auto wavesFor = [&](size_t neurons) {
        const double effective =
            static_cast<double>(_config.totalRnas())
            * (1.0 - _config.rnaSharing);
        return static_cast<size_t>(std::ceil(
            static_cast<double>(neurons) / std::max(1.0, effective)));
    };

    switch (layer.kind) {
      case RLayerKind::Dense: {
        const RnaLayerContext &ctx =
            *_contexts->contexts[_contexts->byLayer.at(&layer)];
        if (!(kernel && ctx.packed() && sameShape)) {
            perLane();
            return;
        }
        // Batched dense kernel path. Per output neuron j, the weight
        // column is loaded once and pairKeys8Lanes writes one key
        // stripe per batch lane from it; each lane's accumulation then
        // replays runPacked over its own keys (the shared counting
        // scratch is all-zero between runs, so serial reuse across
        // lanes is exact). Values land neuron-major (j * lanes + L) so
        // phases B/C batch the activation/encoding AM lookups over a
        // contiguous (neuron x lane) range in one call per tile.
        ctx.prepareWorkspace(ws);
        const size_t inCount = layer.inCount;
        const size_t outCount = layer.outCount;
        for (size_t L = 0; L < lanes; ++L) {
            runs[L] = LayerRun{};
            runs[L].output.shape = {outCount};
            if (!layer.outputEncoder.empty()) {
                runs[L].output.codes = ws.takeCodes();
                runs[L].output.codes.assign(outCount, 0);
            }
            if (lastCompute) {
                runs[L].raw = ws.takeRaw();
                runs[L].raw.assign(outCount, 0.0);
            }
        }
        ws.actB8.ensure(lanes * inCount);
        ws.lanePtrsX.resize(lanes);
        for (size_t L = 0; L < lanes; ++L) {
            uint8_t *dst = ws.actB8.data() + L * inCount;
            _kops->narrow(ins[L].codes.data(), inCount, dst);
            ws.lanePtrsX[L] = dst;
        }
        ws.valsB.ensure(lanes * outCount);
        ws.codesB.ensure(lanes * outCount);
        if (ws.accumCostB.size() < lanes * outCount)
            ws.accumCostB.resize(lanes * outCount);
        const uint32_t shift = ctx.keyShiftFor(0);
        const bool hasAct = ctx.hasActivation();
        const bool hasEnc = ctx.hasEncoder();

        auto evalRange = [&](size_t begin, size_t end,
                             AccumScratch &accum, uint16_t *keys,
                             uint32_t *amK, uint32_t *amR,
                             AccumResult *lr) {
            for (size_t j = begin; j < end; ++j) {
                _kops->pairKeys8Lanes(ctx.denseColumn8(j),
                                      ws.lanePtrsX.data(), lanes,
                                      inCount, shift, keys, inCount);
                ctx.accumulatePrekeyedLanes(
                    0, keys, inCount, lanes, inCount, layer.bias[j],
                    accum, ctx.denseCountingHint(j), lr);
                for (size_t L = 0; L < lanes; ++L) {
                    const size_t slot = j * lanes + L;
                    ws.valsB[slot] = lr[L].value;
                    ws.accumCostB[slot] = lr[L].cost.total();
                }
            }
            const size_t nb = (end - begin) * lanes;
            double *vals = ws.valsB.data() + begin * lanes;
            ctx.activateBatch(vals, vals, nb, amK, amR);
            if (hasEnc) {
                ctx.encodeBatch(vals, nb, amK, amR,
                                ws.codesB.data() + begin * lanes);
                for (size_t j = begin; j < end; ++j)
                    for (size_t L = 0; L < lanes; ++L)
                        runs[L].output.codes[j] =
                            ws.codesB[j * lanes + L];
            }
            if (lastCompute)
                for (size_t j = begin; j < end; ++j)
                    for (size_t L = 0; L < lanes; ++L)
                        runs[L].raw[j] = ws.valsB[j * lanes + L];
        };
        if (intraOp) {
            // (output-neuron x lane) tiles over the fixed shard grid:
            // a shard owns a contiguous neuron range across all batch
            // lanes and writes disjoint value/code/cost slots with its
            // pool lane's private scratch.
            ws.ensureLanes(threads);
            for (auto &lane : ws.lanes) {
                ctx.prepareScratch(lane);
                lane.keysB.ensure(lanes * inCount);
                lane.amKeys.ensure(lanes * outCount);
                lane.amRows.ensure(lanes * outCount);
                if (lane.accumResB.size() < lanes)
                    lane.accumResB.resize(lanes);
            }
            const size_t shards = shardCount(outCount);
            TaskPool::shared().run(
                shards, threads, [&](size_t shard, size_t lane) {
                    const auto [begin, end] =
                        shardRange(outCount, shard, shards);
                    IntraOpScratch &sc = ws.lanes[lane];
                    evalRange(begin, end, sc.accum, sc.keysB.data(),
                              sc.amKeys.data(), sc.amRows.data(),
                              sc.accumResB.data());
                });
        } else {
            ws.keysB.ensure(lanes * inCount);
            ws.amKeys.ensure(lanes * outCount);
            ws.amRows.ensure(lanes * outCount);
            if (ws.accumResB.size() < lanes)
                ws.accumResB.resize(lanes);
            evalRange(0, outCount, ws.accum, ws.keysB.data(),
                      ws.amKeys.data(), ws.amRows.data(),
                      ws.accumResB.data());
        }
        // Per-lane flat reduction in neuron order: bitwise-identical
        // cost accumulation to the serial per-sample path. The
        // activation/encoding query costs are per-layer constants, so
        // they are re-added per neuron here (the serial path's exact
        // addition sequence) instead of being staged per slot.
        const nvm::OpCost actQ =
            hasAct ? ctx.activationQueryCost() : nvm::OpCost{};
        const nvm::OpCost encQ =
            hasEnc ? ctx.encodingQueryCost() : nvm::OpCost{};
        const size_t waves = wavesFor(outCount);
        for (size_t L = 0; L < lanes; ++L) {
            uint64_t worstNeuron = 0;
            for (size_t j = 0; j < outCount; ++j) {
                const nvm::OpCost &wa = ws.accumCostB[j * lanes + L];
                runs[L].cost.weightedAccum += wa;
                if (hasAct)
                    runs[L].cost.activation += actQ;
                if (hasEnc)
                    runs[L].cost.encoding += encQ;
                worstNeuron = std::max(
                    worstNeuron,
                    wa.cycles + actQ.cycles + encQ.cycles);
            }
            runs[L].stageCycles = worstNeuron * waves;
        }
        return;
      }
      case RLayerKind::Conv: {
        const RnaLayerContext &ctx =
            *_contexts->contexts[_contexts->byLayer.at(&layer)];
        if (!(kernel && ctx.packed() && sameShape && !intraOp)) {
            perLane();
            return;
        }
        // Batched conv kernel path (serial executor; the sharded
        // executor falls back to per-lane runLayer, which shards
        // itself). Position-major like the serial kernel path, with
        // the per-(position, channel) work — window clipping, the
        // counting-cycle histogram, the weight-chunk loads inside
        // pairKeys8Lanes — done once and shared across the lanes.
        RAPIDNN_ASSERT(ins[0].shape.size() == 3,
                       "conv needs [C, H, W]");
        const size_t inC = ins[0].shape[0];
        const size_t h = ins[0].shape[1], w = ins[0].shape[2];
        const size_t k = layer.kernel;
        const size_t oh = layer.samePadding ? h : h - k + 1;
        const size_t ow = layer.samePadding ? w : w - k + 1;
        ConvGatherPlan *plan =
            &ws.convPlans[_contexts->byLayer.at(&layer)];
        if (!plan->matches(inC, h, w))
            buildConvGatherPlan(*plan, layer, inC, h, w);

        ctx.prepareWorkspace(ws);
        const size_t positions = oh * ow;
        const size_t flatNeurons = layer.outCount * positions;
        const size_t fullWindow = layer.inCount;  // inC * k * k
        const size_t windowMax = layer.weightCodes[0].size();
        const size_t inElems = ins[0].codes.size();
        for (size_t L = 0; L < lanes; ++L) {
            runs[L] = LayerRun{};
            runs[L].output.shape = {layer.outCount, oh, ow};
            if (!layer.outputEncoder.empty()) {
                runs[L].output.codes = ws.takeCodes();
                runs[L].output.codes.assign(flatNeurons, 0);
            }
            if (lastCompute) {
                runs[L].raw = ws.takeRaw();
                runs[L].raw.assign(flatNeurons, 0.0);
            }
        }
        ws.actB8.ensure(lanes * inElems);
        for (size_t L = 0; L < lanes; ++L)
            _kops->narrow(ins[L].codes.data(), inElems,
                          ws.actB8.data() + L * inElems);
        ws.gx8B.ensure(lanes * windowMax);
        ws.gw8.ensure(windowMax);
        ws.keysB.ensure(lanes * windowMax);
        ws.valsB.ensure(lanes * flatNeurons);
        ws.codesB.ensure(lanes * flatNeurons);
        ws.amKeys.ensure(lanes * positions);
        ws.amRows.ensure(lanes * positions);
        if (ws.accumCostB.size() < lanes * flatNeurons)
            ws.accumCostB.resize(lanes * flatNeurons);
        if (ws.accumResB.size() < lanes)
            ws.accumResB.resize(lanes);
        ws.lanePtrsH.resize(lanes);
        for (size_t L = 0; L < lanes; ++L)
            ws.lanePtrsH[L] = ws.gx8B.data() + L * windowMax;

        for (size_t p = 0; p < positions; ++p) {
            const uint32_t s0 = plan->start[p];
            const size_t n = plan->start[p + 1] - s0;
            for (size_t L = 0; L < lanes; ++L)
                _kops->gather8(ws.actB8.data() + L * inElems,
                               plan->inputIdx.data() + s0, n,
                               ws.gx8B.data() + L * windowMax);
            for (size_t oc = 0; oc < layer.outCount; ++oc) {
                const uint8_t *wp = ctx.convChannel8(oc);
                if (n != fullWindow) {
                    for (size_t s = 0; s < n; ++s)
                        ws.gw8[s] = wp[plan->weightIdx[s0 + s]];
                    wp = ws.gw8.data();
                }
                // Counting cycles depend only on the (clipped) weight
                // window: one histogram serves every lane.
                const uint32_t cc =
                    ctx.packedCountingCycles(oc, wp, n, ws.accum);
                _kops->pairKeys8Lanes(wp, ws.lanePtrsH.data(), lanes,
                                      n, ctx.keyShiftFor(oc),
                                      ws.keysB.data(), windowMax);
                const size_t oidx = oc * positions + p;
                ctx.accumulatePrekeyedLanes(
                    oc, ws.keysB.data(), windowMax, lanes, n,
                    layer.bias[oc], ws.accum, &cc,
                    ws.accumResB.data());
                for (size_t L = 0; L < lanes; ++L) {
                    const size_t slot = oidx * lanes + L;
                    ws.valsB[slot] = ws.accumResB[L].value;
                    ws.accumCostB[slot] =
                        ws.accumResB[L].cost.total();
                }
            }
        }
        const bool hasAct = ctx.hasActivation();
        const bool hasEnc = ctx.hasEncoder();
        for (size_t oc = 0; oc < layer.outCount; ++oc) {
            // Slots for one channel span a contiguous (position x
            // lane) range in the neuron-major layout: one AM batch
            // call per channel covers every lane.
            const size_t base = oc * positions * lanes;
            const size_t nb = positions * lanes;
            double *vals = ws.valsB.data() + base;
            ctx.activateBatch(vals, vals, nb, ws.amKeys.data(),
                              ws.amRows.data());
            if (hasEnc)
                ctx.encodeBatch(vals, nb, ws.amKeys.data(),
                                ws.amRows.data(),
                                ws.codesB.data() + base);
        }
        for (size_t L = 0; L < lanes; ++L) {
            if (hasEnc)
                for (size_t oidx = 0; oidx < flatNeurons; ++oidx)
                    runs[L].output.codes[oidx] =
                        ws.codesB[oidx * lanes + L];
            if (lastCompute)
                for (size_t oidx = 0; oidx < flatNeurons; ++oidx)
                    runs[L].raw[oidx] = ws.valsB[oidx * lanes + L];
        }
        // Per-lane flat reduction with the per-layer-constant AM query
        // costs re-added per neuron, exactly as the dense path above.
        const nvm::OpCost actQ =
            hasAct ? ctx.activationQueryCost() : nvm::OpCost{};
        const nvm::OpCost encQ =
            hasEnc ? ctx.encodingQueryCost() : nvm::OpCost{};
        const size_t waves = wavesFor(flatNeurons);
        for (size_t L = 0; L < lanes; ++L) {
            uint64_t worstNeuron = 0;
            for (size_t oidx = 0; oidx < flatNeurons; ++oidx) {
                const nvm::OpCost &wa =
                    ws.accumCostB[oidx * lanes + L];
                runs[L].cost.weightedAccum += wa;
                if (hasAct)
                    runs[L].cost.activation += actQ;
                if (hasEnc)
                    runs[L].cost.encoding += encQ;
                worstNeuron = std::max(
                    worstNeuron,
                    wa.cycles + actQ.cycles + encQ.cycles);
            }
            runs[L].stageCycles = worstNeuron * waves;
        }
        return;
      }
      case RLayerKind::Recurrent: {
        const RnaLayerContext &ctx =
            *_contexts->contexts[_contexts->byLayer.at(&layer)];
        if (!(kernel && ctx.packedRecurrent() && sameShape
              && !intraOp)) {
            perLane();
            return;
        }
        // Batched recurrent kernel path (serial executor). Steps stay
        // serial (the feedback hazard); within a step, each hidden
        // neuron's two weight columns are keyed once for all lanes and
        // the per-lane step evaluations replay the serial order from
        // their own key stripes and state stripes.
        const size_t hidden = layer.outCount;
        const size_t features = layer.inCount;
        const size_t inElems = ins[0].codes.size();
        RAPIDNN_ASSERT(inElems == layer.steps * features,
                       "recurrent layer code count mismatch");
        ctx.prepareWorkspace(ws);

        nvm::OpCost zeroEncode;
        const uint16_t zeroCode = ctx.encodeState(0.0, zeroEncode);
        for (size_t L = 0; L < lanes; ++L) {
            runs[L] = LayerRun{};
            // One zero-state encode per sample, exactly as infer()
            // charges it (the code itself is shared — it is a pure
            // function of the codebook).
            runs[L].cost.encoding += zeroEncode;
        }

        ws.actB8.ensure(lanes * inElems);
        for (size_t L = 0; L < lanes; ++L)
            _kops->narrow(ins[L].codes.data(), inElems,
                          ws.actB8.data() + L * inElems);
        ws.h8B.ensure(lanes * hidden);
        ws.keysB.ensure(lanes * features);
        ws.keysHB.ensure(lanes * hidden);
        ws.hCodesB.assign(lanes * hidden, zeroCode);
        ws.hRawB.assign(lanes * hidden, 0.0);
        ws.hNextB.resize(lanes * hidden);
        ws.hRawNextB.resize(lanes * hidden);
        if (ws.neuronCostsB.size() < lanes * hidden)
            ws.neuronCostsB.resize(lanes * hidden);
        ws.stepWorstB.assign(lanes, 0);
        ws.lanePtrsX.resize(lanes);
        ws.lanePtrsH.resize(lanes);
        const uint32_t shiftX = ctx.keyShiftFor(0);
        const uint32_t shiftH = ctx.stateKeyShift();

        for (size_t t = 0; t < layer.steps; ++t) {
            for (size_t L = 0; L < lanes; ++L) {
                // Per-step narrow of each lane's frozen previous
                // state, as the serial step loop does.
                _kops->narrow(ws.hCodesB.data() + L * hidden, hidden,
                              ws.h8B.data() + L * hidden);
                ws.lanePtrsH[L] = ws.h8B.data() + L * hidden;
                ws.lanePtrsX[L] =
                    ws.actB8.data() + L * inElems + t * features;
            }
            for (size_t hn = 0; hn < hidden; ++hn) {
                _kops->pairKeys8Lanes(ctx.recurrentXColumn8(hn),
                                      ws.lanePtrsX.data(), lanes,
                                      features, shiftX,
                                      ws.keysB.data(), features);
                _kops->pairKeys8Lanes(ctx.recurrentHColumn8(hn),
                                      ws.lanePtrsH.data(), lanes,
                                      hidden, shiftH,
                                      ws.keysHB.data(), hidden);
                const uint32_t *xc = ctx.recXCountingHint(hn);
                const uint32_t *hc = ctx.recHCountingHint(hn);
                for (size_t L = 0; L < lanes; ++L) {
                    NeuronResult r = ctx.evaluateRecurrentStepPrekeyed(
                        ws.keysB.data() + L * features, features,
                        ws.keysHB.data() + L * hidden, hidden,
                        layer.bias[hn], ws.accum, xc, hc);
                    ws.neuronCostsB[hn * lanes + L] = r.cost;
                    ws.hNextB[L * hidden + hn] = r.code;
                    ws.hRawNextB[L * hidden + hn] = r.rawValue;
                }
            }
            for (size_t L = 0; L < lanes; ++L) {
                uint64_t worstNeuron = 0;
                for (size_t hn = 0; hn < hidden; ++hn) {
                    const NeuronCost &c =
                        ws.neuronCostsB[hn * lanes + L];
                    runs[L].cost += c;
                    worstNeuron =
                        std::max(worstNeuron, c.total().cycles);
                }
                ws.stepWorstB[L] += worstNeuron;
            }
            std::swap(ws.hCodesB, ws.hNextB);
            std::swap(ws.hRawB, ws.hRawNextB);
        }

        const bool last = layer.outputEncoder.empty();
        for (size_t L = 0; L < lanes; ++L) {
            runs[L].stageCycles = ws.stepWorstB[L];
            runs[L].output.shape = {hidden};
            const double *hRaw = ws.hRawB.data() + L * hidden;
            if (lastCompute) {
                runs[L].raw = ws.takeRaw();
                runs[L].raw.assign(hRaw, hRaw + hidden);
            }
            if (!last) {
                runs[L].output.codes = ws.takeCodes();
                runs[L].output.codes.assign(hidden, 0);
                nvm::OpCost encodeCost;
                for (size_t hn = 0; hn < hidden; ++hn)
                    runs[L].output.codes[hn] = static_cast<uint16_t>(
                        layer.outputEncoder.encode(hRaw[hn]));
                encodeCost += _config.cost.camSearch(
                    layer.outputEncoder.entries(), 32);
                runs[L].cost.encoding += encodeCost;
            }
        }
        return;
      }
      case RLayerKind::Residual: {
        // Recurse batched through the inner stack, then the per-lane
        // skip add — the add is elementwise per lane, so the serial
        // residual tail runs unchanged per lane.
        std::vector<EncodedTensor> values(lanes);
        for (size_t L = 0; L < lanes; ++L) {
            values[L].shape = ins[L].shape;
            values[L].codes = ws.takeCodes();
            values[L].codes.assign(ins[L].codes.begin(),
                                   ins[L].codes.end());
            runs[L] = LayerRun{};
        }
        std::vector<std::vector<double>> innerRaws(lanes);
        std::vector<LayerRun> innerRuns(lanes);
        for (size_t i = 0; i < layer.inner.size(); ++i) {
            const bool lastInner = i + 1 == layer.inner.size();
            runLayerBatch(layer.inner[i], values, lastInner, ws,
                          threads, innerRuns);
            for (size_t L = 0; L < lanes; ++L) {
                runs[L].cost += innerRuns[L].cost;
                runs[L].stageCycles += innerRuns[L].stageCycles;
                if (lastInner)
                    innerRaws[L] = std::move(innerRuns[L].raw);
                std::vector<uint16_t> spent =
                    std::move(values[L].codes);
                values[L] = std::move(innerRuns[L].output);
                ws.giveCodes(std::move(spent));
            }
        }
        for (size_t L = 0; L < lanes; ++L)
            ws.giveCodes(std::move(values[L].codes));

        AccumFormat format;
        const nvm::CostModel &m = _config.cost;
        const bool last = layer.outputEncoder.empty();
        for (size_t L = 0; L < lanes; ++L) {
            const EncodedTensor &in = ins[L];
            std::vector<double> &innerRaw = innerRaws[L];
            RAPIDNN_ASSERT(innerRaw.size() == in.codes.size(),
                           "residual inner stack changed shape");
            nvm::OpCost addCost{
                m.carryPropagateCyclesPerBit * format.accumulatorBits,
                m.norEnergyPerBit
                    * double(format.accumulatorBits
                             * m.carryPropagateCyclesPerBit)
                    * double(in.codes.size())};
            runs[L].cost.weightedAccum += addCost;
            runs[L].stageCycles += addCost.cycles;

            runs[L].output.shape = in.shape;
            if (!last) {
                runs[L].output.codes = ws.takeCodes();
                runs[L].output.codes.assign(innerRaw.size(), 0);
            }
            if (lastCompute) {
                runs[L].raw = ws.takeRaw();
                runs[L].raw.assign(innerRaw.size(), 0.0);
            }
            for (size_t i = 0; i < innerRaw.size(); ++i) {
                const int64_t sum = format.toFixed(innerRaw[i])
                    + format.toFixed(
                          layer.inputCodebook.value(in.codes[i]));
                double summed = format.toReal(sum);
                if (layer.activation)
                    summed = layer.activation->lookup(summed);
                if (lastCompute)
                    runs[L].raw[i] = summed;
                if (!last)
                    runs[L].output.codes[i] = static_cast<uint16_t>(
                        layer.outputEncoder.encode(summed));
            }
            ws.giveRaw(std::move(innerRaw));
        }
        return;
      }
      default:
        // Pools, flatten, reference-path layers: per-lane execution.
        perLane();
        return;
    }
}

std::vector<std::vector<double>>
Chip::inferBatch(std::span<const nn::Tensor> inputs,
                 std::span<PerfReport> reports,
                 size_t numThreadsOverride) const
{
    RAPIDNN_ASSERT(_model != nullptr, "chip not configured");
    RAPIDNN_ASSERT(reports.size() >= inputs.size(),
                   "inferBatch needs one report per input");
    const size_t lanes = inputs.size();
    std::vector<std::vector<double>> logits(lanes);
    if (lanes == 0)
        return logits;
    RAPIDNN_TELEMETRY_SPAN("chip_infer_batch");
    const size_t threads = std::max<size_t>(
        numThreadsOverride != 0 ? numThreadsOverride
                                : _config.numThreads,
        1);
    const auto &model = *_model;

    WorkspaceLease lease(_workspace.get());
    Workspace &ws = lease.get();
    if (ws.convPlans.size() < _contexts->contexts.size())
        ws.convPlans.resize(_contexts->contexts.size());

    // Virtual input layer, one encode per lane (identical to infer()).
    std::vector<EncodedTensor> encs(lanes);
    {
        RAPIDNN_TELEMETRY_STAGE("encoding",
                                stageHistogram("encoding"));
        for (size_t L = 0; L < lanes; ++L) {
            const nn::Tensor &x = inputs[L];
            encs[L].shape = x.shape();
            encs[L].codes = ws.takeCodes();
            encs[L].codes.assign(x.numel(), 0);
            for (size_t i = 0; i < x.numel(); ++i)
                encs[L].codes[i] = static_cast<uint16_t>(
                    model.inputEncoder().encode(x[i]));
        }
    }
    std::vector<InferTally> tallies(lanes);
    for (size_t L = 0; L < lanes; ++L) {
        reports[L].reset();
        InferTally &t = tallies[L];
        t.inputEncode = inputEncodeCost(inputs[L].numel());
        t.latencyCycles = t.inputEncode.cycles;
        t.worstStage = t.inputEncode.cycles;
        t.totalEnergy = t.inputEncode.energy;
    }

    size_t lastCompute = model.layers().size();
    for (size_t l = model.layers().size(); l-- > 0;) {
        const RLayerKind kind = model.layers()[l].kind;
        if (kind == RLayerKind::Dense || kind == RLayerKind::Conv ||
            kind == RLayerKind::Residual ||
            kind == RLayerKind::Recurrent) {
            lastCompute = l;
            break;
        }
    }

    std::vector<LayerRun> runs(lanes);
    for (size_t l = 0; l < model.layers().size(); ++l) {
        const RLayer &layer = model.layers()[l];
        {
            const char *stage = stageName(layer.kind);
            RAPIDNN_TELEMETRY_SPAN(stage, static_cast<int64_t>(l), 0,
                                   stageHistogram(stage));
            runLayerBatch(layer, encs, l == lastCompute, ws, threads,
                          runs);
        }
        for (size_t L = 0; L < lanes; ++L) {
            tallyLayerRun(tallies[L], runs[L], layer,
                          l == lastCompute);
            if (l == lastCompute)
                logits[L] = std::move(runs[L].raw);
            std::vector<uint16_t> spent = std::move(encs[L].codes);
            encs[L] = std::move(runs[L].output);
            ws.giveCodes(std::move(spent));
        }
    }
    for (size_t L = 0; L < lanes; ++L)
        ws.giveCodes(std::move(encs[L].codes));

    for (size_t L = 0; L < lanes; ++L)
        finalizeReport(tallies[L], logits[L].size(), reports[L]);
    return logits;
}

double
Chip::errorRate(const nn::Dataset &data, PerfReport &avgReport) const
{
    RAPIDNN_ASSERT(data.size() > 0, "errorRate on empty dataset");
    size_t wrong = 0;
    avgReport = PerfReport{};
    Time latencySum{};
    Time stageSum{};
    Energy energySum{};

    for (const auto &sample : data.samples()) {
        PerfReport one;
        std::vector<double> logits = infer(sample.x, one);
        const size_t best = static_cast<size_t>(
            std::max_element(logits.begin(), logits.end())
            - logits.begin());
        if (static_cast<int>(best) != sample.label)
            ++wrong;
        latencySum += one.latency;
        stageSum += one.stageTime;
        energySum += one.energy;
        for (const auto &cat : one.breakdown)
            avgReport.addCategory(cat.name, cat.time, cat.energy);
    }
    const double n = static_cast<double>(data.size());
    avgReport.latency = latencySum * (1.0 / n);
    avgReport.stageTime = stageSum * (1.0 / n);
    avgReport.energy = energySum * (1.0 / n);
    for (auto &cat : avgReport.breakdown) {
        cat.time = cat.time * (1.0 / n);
        cat.energy = cat.energy * (1.0 / n);
    }
    return static_cast<double>(wrong) / n;
}

RnaAreaBreakdown
Chip::rnaArea() const
{
    const nvm::CostModel &m = _config.cost;
    RnaAreaBreakdown a;
    a.crossbar = m.crossbarArea;
    a.counter = m.counterArea;
    a.activationAm = m.amBlockArea;
    a.encodingAm = m.amBlockArea;
    // MUX / drivers / glue: remainder to the paper's 3841 um^2 block.
    const Area anchor = Area::squareMicrometers(3841.0);
    const Area partial = a.crossbar + a.counter + a.activationAm
                       + a.encodingAm;
    a.other = anchor.um2() > partial.um2()
        ? Area::squareMicrometers(anchor.um2() - partial.um2())
        : Area{};
    return a;
}

ChipAreaBreakdown
Chip::chipArea() const
{
    const nvm::CostModel &m = _config.cost;
    const double rnas = static_cast<double>(m.rnasPerTile)
                      * static_cast<double>(m.tilesPerChip);
    ChipAreaBreakdown a;
    a.rna = rnaArea().total() * rnas;
    // Data blocks (paper Figure 14): memory is 38.2 % of the chip while
    // RNAs are 56.7 %; scale from the RNA roll-up.
    a.memory = a.rna * (38.2 / 56.7);
    a.buffer = a.rna * (3.4 / 56.7);
    a.controller = a.rna * (1.7 / 56.7);
    a.other = a.rna * (1.2 / 56.7);
    return a;
}

Power
Chip::chipPower() const
{
    const nvm::CostModel &m = _config.cost;
    const Power rna = m.crossbarPower + m.counterPower
                    + m.amBlockPower + m.amBlockPower
                    + Power::milliwatts(0.0);
    const Power tile = rna * static_cast<double>(m.rnasPerTile)
                     + m.tileBufferPower;
    return tile * static_cast<double>(m.tilesPerChip)
         * static_cast<double>(_config.chips);
}

} // namespace rapidnn::rna
