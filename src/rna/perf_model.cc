#include "rna/perf_model.hh"

#include <algorithm>
#include <cmath>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "nvm/crossbar.hh"

namespace rapidnn::rna {

size_t
RnaPerfModel::expectedAddends(size_t fanIn) const
{
    // A neuron with n incoming edges touches at most min(n, w*u)
    // distinct counters. When counters exceed 1, the CSD decomposition
    // contributes roughly one extra addend per doubling of the mean
    // repeat count (nonzero signed digits grow with log2 of the value).
    const double cells = static_cast<double>(
        _model.weightEntries * _model.inputEntries);
    const double n = static_cast<double>(fanIn);
    const double distinct = std::min(n, cells);
    const double meanCount = std::max(1.0, n / cells);
    const double digitsPerCounter =
        1.0 + std::max(0.0, std::log2(meanCount)) / 3.0;
    return static_cast<size_t>(std::ceil(distinct * digitsPerCounter));
}

uint64_t
RnaPerfModel::neuronCycles(size_t fanIn) const
{
    const nvm::CostModel &cost = _chip.cost;

    // Parallel counting: ~ceil(n / w) cycles plus imbalance margin.
    const double counting = std::ceil(
        static_cast<double>(fanIn)
        / static_cast<double>(_model.weightEntries))
        * _model.countingBalanceFactor;

    // Product fetches: one crossbar read per distinct product used.
    const double fetch = std::min<double>(
        static_cast<double>(fanIn),
        static_cast<double>(_model.weightEntries
                            * _model.inputEntries));

    // Adder tree: log_{3/2} stages of 13 cycles + 13*N propagate.
    const size_t addends = expectedAddends(fanIn) + 1;  // + bias
    const size_t stages = nvm::CrossbarArray::treeStages(addends);
    const double adder = static_cast<double>(
        cost.csaStageCycles * stages
        + cost.carryPropagateCyclesPerBit * _model.accumulatorBits);

    // Activation + encoding AM searches (pipelined stages) + reads.
    const double amCycles = static_cast<double>(
        cost.camSearch(_model.activationRows, 32).cycles + 1
        + cost.camSearch(_model.inputEntries, 32).cycles + 1);

    return static_cast<uint64_t>(
        std::ceil(counting + fetch + adder + amCycles));
}

Energy
RnaPerfModel::neuronEnergy(size_t fanIn) const
{
    const nvm::CostModel &cost = _chip.cost;
    const double n = static_cast<double>(fanIn);

    Energy e = cost.counterIncrementEnergy * n;
    const double distinct = std::min<double>(
        n, static_cast<double>(_model.weightEntries
                               * _model.inputEntries));
    e += cost.crossbarReadEnergy * distinct;

    const size_t addends = expectedAddends(fanIn) + 1;
    const size_t stages = nvm::CrossbarArray::treeStages(addends);
    // Per CSA stage: one NOR per bit slice per cycle for each surviving
    // group (groups decay by 2/3 per stage) — mirrors
    // CrossbarArray::csaStage's charge.
    const Energy perGroup = cost.norEnergyPerBit
        * static_cast<double>(_model.accumulatorBits
                              * cost.csaStageCycles);
    double remaining = static_cast<double>(addends);
    for (size_t s = 0; s < stages; ++s) {
        const double groups = remaining / 3.0;
        e += perGroup * groups;
        remaining = remaining * 2.0 / 3.0;
    }
    e += cost.norEnergyPerBit
         * static_cast<double>(_model.accumulatorBits
                               * cost.carryPropagateCyclesPerBit);

    e += cost.camSearch(_model.activationRows, 32).energy;
    e += cost.amResultReadEnergy;
    e += cost.camSearch(_model.inputEntries, 32).energy;
    e += cost.amResultReadEnergy;
    return e;
}

uint64_t
RnaPerfModel::neuronInterval(size_t fanIn) const
{
    // Steady-state initiation interval of one RNA streaming neurons:
    // counting, banked product fetch and the 13-cycle adder segments
    // overlap across consecutive inputs, so the slowest phase governs.
    const nvm::CostModel &cost = _chip.cost;
    const double counting = std::ceil(
        static_cast<double>(fanIn)
        / static_cast<double>(_model.weightEntries))
        * _model.countingBalanceFactor;
    const double fetch = std::min<double>(
        static_cast<double>(fanIn),
        static_cast<double>(_model.weightEntries
                            * _model.inputEntries)) / 4.0;
    return static_cast<uint64_t>(std::ceil(std::max(
        {counting, fetch, double(cost.csaStageCycles)})));
}

PerfReport
RnaPerfModel::estimate(const nn::NetworkShape &shape) const
{
    const nvm::CostModel &cost = _chip.cost;
    const Time cycle = cost.cyclePeriod;
    const double effectiveRnas =
        static_cast<double>(_chip.totalRnas())
        * (1.0 - _chip.rnaSharing);

    PerfReport report;
    report.totalOps = shape.totalOps();

    // Residency: when every layer's neurons fit on the chip at once,
    // layers pipeline across blocks and the slowest stage limits
    // throughput; otherwise the chip is time-shared across layers and
    // stage times add.
    size_t totalNeurons = 0;
    for (const auto &layer : shape.layers)
        totalNeurons += layer.neurons;
    const bool resident =
        static_cast<double>(totalNeurons) <= effectiveRnas;

    uint64_t latencyCycles = 0;
    uint64_t worstStage = 1;
    uint64_t stageSum = 0;
    Energy energy{};
    Time accumTime{}, actTime{}, encTime{}, poolTime{}, otherTime{};
    Energy accumEnergy{}, actEnergy{}, encEnergy{}, poolEnergy{},
           otherEnergy{};

    for (const auto &layer : shape.layers) {
        if (layer.kind == nn::LayerKind::MaxPool2D ||
            layer.kind == nn::LayerKind::AvgPool2D) {
            // One AM load + search per pooled window.
            const nvm::OpCost one =
                cost.camSearch(layer.fanIn, 16) + nvm::OpCost{1,
                    cost.camWriteEnergy
                        * static_cast<double>(layer.fanIn)};
            const size_t waves = static_cast<size_t>(std::ceil(
                static_cast<double>(layer.neurons)
                / static_cast<double>(_chip.totalRnas())));
            const uint64_t stageCycles = one.cycles * waves;
            latencyCycles += stageCycles;
            worstStage = std::max<uint64_t>(worstStage, stageCycles);
            stageSum += stageCycles;
            const Energy layerEnergy =
                one.energy * static_cast<double>(layer.neurons);
            energy += layerEnergy;
            poolTime += cycle * double(one.cycles)
                        * double(layer.neurons);
            poolEnergy += layerEnergy;
            continue;
        }

        const uint64_t perNeuron = neuronCycles(layer.fanIn);
        const size_t waves = static_cast<size_t>(std::ceil(
            static_cast<double>(layer.neurons)
            / std::max(1.0, effectiveRnas)));
        const uint64_t stageCycles = perNeuron * waves;
        latencyCycles += stageCycles;
        // Throughput: consecutive inputs stream through the neuron's
        // phases at the initiation interval, not the full latency.
        const uint64_t pipelined = neuronInterval(layer.fanIn) * waves;
        worstStage = std::max<uint64_t>(worstStage, pipelined);
        stageSum += pipelined;

        const Energy perNeuronEnergy = neuronEnergy(layer.fanIn);
        const Energy layerEnergy =
            perNeuronEnergy * static_cast<double>(layer.neurons);
        energy += layerEnergy;

        // Split the per-neuron cost into the Figure 13 categories.
        const double amCyc = static_cast<double>(
            cost.camSearch(_model.activationRows, 32).cycles + 1);
        const double encCyc = static_cast<double>(
            cost.camSearch(_model.inputEntries, 32).cycles + 1);
        const double accumCyc =
            static_cast<double>(perNeuron) - amCyc - encCyc;
        accumTime += cycle * (accumCyc * double(layer.neurons));
        actTime += cycle * (amCyc * double(layer.neurons));
        encTime += cycle * (encCyc * double(layer.neurons));

        // Active-power energy: busy blocks draw their Table 1 power.
        const Energy accumActive =
            cost.crossbarPower.over(cycle)
            * (accumCyc * double(layer.neurons));
        const Energy counterActive =
            cost.counterPower.over(cycle)
            * (accumCyc * double(layer.neurons));
        const Energy actActive = cost.amBlockPower.over(cycle)
            * (amCyc * double(layer.neurons));
        const Energy encActive = cost.amBlockPower.over(cycle)
            * (encCyc * double(layer.neurons));
        energy += accumActive + counterActive + actActive + encActive;

        const Energy actE =
            (cost.camSearch(_model.activationRows, 32).energy
             + cost.amResultReadEnergy)
            * static_cast<double>(layer.neurons) + actActive;
        const Energy encE =
            (cost.camSearch(_model.inputEntries, 32).energy
             + cost.amResultReadEnergy)
            * static_cast<double>(layer.neurons) + encActive;
        actEnergy += actE;
        encEnergy += encE;
        accumEnergy += layerEnergy + accumActive - (actE - actActive)
                     - (encE - encActive);
        otherEnergy += counterActive;

        // Broadcast buffer between layers.
        const uint32_t bits = static_cast<uint32_t>(
            std::max<size_t>(1, static_cast<size_t>(
                std::ceil(std::log2(
                    static_cast<double>(_model.inputEntries))))));
        const uint64_t xferCycles = static_cast<uint64_t>(std::ceil(
            static_cast<double>(layer.neurons)
            / static_cast<double>(_chip.totalRnas()))) * bits;
        latencyCycles += xferCycles;
        const Energy xferEnergy = cost.bufferBitEnergy
            * (static_cast<double>(layer.neurons) * bits);
        energy += xferEnergy;
        otherTime += cycle * double(xferCycles);
        otherEnergy += xferEnergy;
    }

    // Idle/leakage charge over the run (controller, buffers, MUXes and
    // power-ungated blocks), scaled to the chips the workload keeps
    // busy — a small FC model on an 8-chip deployment runs on one chip
    // while the others stay clock gated.
    size_t maxLayerNeurons = 1;
    for (const auto &layer : shape.layers)
        maxLayerNeurons = std::max(maxLayerNeurons, layer.neurons);
    const size_t rnasPerChip = cost.rnasPerTile * cost.tilesPerChip;
    const size_t chipsUsed = std::min<size_t>(
        _chip.chips,
        (maxLayerNeurons + rnasPerChip - 1) / rnasPerChip);
    const Power idle = Power::watts(
        153.6 * static_cast<double>(std::max<size_t>(1, chipsUsed)))
        * cost.idleLeakageFraction;
    const Energy idleEnergy =
        idle.over(cycle * static_cast<double>(latencyCycles));
    energy += idleEnergy;
    otherEnergy += idleEnergy;

    report.latency = cycle * static_cast<double>(latencyCycles);
    report.stageTime = cycle * static_cast<double>(
        resident ? worstStage : std::max<uint64_t>(1, stageSum));
    report.energy = energy;
    report.addCategory("weighted_accum", accumTime, accumEnergy);
    report.addCategory("activation", actTime, actEnergy);
    report.addCategory("encoding", encTime, encEnergy);
    report.addCategory("pooling", poolTime, poolEnergy);
    report.addCategory("other", otherTime, otherEnergy);
    return report;
}

double
RnaPerfModel::gopsPerMm2(const nn::NetworkShape &shape) const
{
    // Steady-state pipelined throughput density evaluated at the
    // paper's canonical neuron (1024 incoming branches, Section 4.1):
    // each RNA streams neurons with its accumulation phases overlapped
    // across consecutive inputs, so its initiation interval is the
    // slowest phase (counting, banked product fetch, or one 13-cycle
    // adder segment), not the sum.
    (void)shape;  // the density metric is workload-independent
    const nvm::CostModel &cost = _chip.cost;
    const double fanIn = 1024.0;
    const double counting =
        std::ceil(fanIn / static_cast<double>(_model.weightEntries))
        * _model.countingBalanceFactor;
    const double fetchBanks = 4.0;  // banked crossbar read ports
    const double fetch = std::min<double>(
        fanIn, static_cast<double>(_model.weightEntries
                                   * _model.inputEntries)) / fetchBanks;
    const double interval = std::max({counting, fetch,
        static_cast<double>(cost.csaStageCycles)});

    const double opsPerNeuron = 2.0 * fanIn;
    const double perRnaGops = opsPerNeuron
        / (interval * cost.cyclePeriod.sec()) / 1e9;
    // Sharing keeps throughput (shared RNAs fill pipeline bubbles of
    // their layer) while shedding RNA area, so density rises
    // (Section 5.6, Table 4).
    const double rnas = static_cast<double>(_chip.totalRnas());
    const double areaMm2 = 124.1 * static_cast<double>(_chip.chips)
        * (1.0 - _chip.rnaSharing * 0.567);  // RNAs are 56.7 % of area
    return perRnaGops * rnas / areaMm2;
}

size_t
RnaPerfModel::memoryBytes(const nn::NetworkShape &shape) const
{
    const size_t w = _model.weightEntries;
    const size_t u = _model.inputEntries;
    const uint32_t wBits = indexBits(w);

    size_t bits = 0;
    for (const auto &layer : shape.layers) {
        if (layer.kind == nn::LayerKind::MaxPool2D ||
            layer.kind == nn::LayerKind::AvgPool2D)
            continue;
        // Encoded weights: every parameter stored at log2(w) bits.
        bits += static_cast<size_t>(layer.params) * wBits;
        // Per distinct RNA table set: the w*u product table, the
        // activation table and the encoding table (32-bit rows).
        const size_t perTable = w * u * 32
            + _model.activationRows * 64 + u * 64;
        bits += layer.distinctNeurons * perTable;
    }
    return (bits + 7) / 8;
}

double
RnaPerfModel::gopsPerWatt(const nn::NetworkShape &shape) const
{
    // Power efficiency at steady-state pipelining, evaluated at the
    // paper's canonical 1024-fan-in neuron (like gopsPerMm2): ops per
    // second per RNA over its active power plus switching-energy rate.
    (void)shape;
    const nvm::CostModel &cost = _chip.cost;
    const size_t fanIn = 1024;
    const double counting = std::ceil(
        double(fanIn) / double(_model.weightEntries))
        * _model.countingBalanceFactor;
    const double fetch = std::min<double>(
        double(fanIn), double(_model.weightEntries
                              * _model.inputEntries)) / 4.0;
    const double interval = std::max({counting, fetch,
        double(cost.csaStageCycles)});
    const double intervalSec = interval * cost.cyclePeriod.sec();

    const double opsPerSec = 2.0 * double(fanIn) / intervalSec;
    const Power rnaPower = cost.crossbarPower + cost.counterPower
        + cost.amBlockPower + cost.amBlockPower;
    const double switchingWatts =
        neuronEnergy(fanIn).j() / intervalSec;
    return opsPerSec / 1e9 / (rnaPower.w() + switchingWatts);
}

} // namespace rapidnn::rna
