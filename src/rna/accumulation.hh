/**
 * @file
 * The RNA weighted-accumulation engine (paper Section 4.1).
 *
 * Incoming (weight code, input code) pairs are tallied by the parallel
 * counting hardware (w weight buffers, one pop per buffer per cycle),
 * each tallied product is shifted according to the signed-digit
 * decomposition of its repeat count, and the shifted addends are summed
 * by the in-memory carry-save adder tree. The engine is functional +
 * cost-accurate: the value is computed exactly in fixed point through
 * the same addend list the hardware would reduce.
 */

#ifndef RAPIDNN_RNA_ACCUMULATION_HH
#define RAPIDNN_RNA_ACCUMULATION_HH

#include <cstdint>
#include <vector>

#include "common/array.hh"
#include "common/simd.hh"
#include "nvm/cost_model.hh"
#include "nvm/crossbar.hh"
#include "nvm/op_cost.hh"

namespace rapidnn::rna {

/** Per-phase cost breakdown of one neuron's weighted accumulation. */
struct AccumCost
{
    nvm::OpCost counting;  //!< parallel counting of (w, u) pairs
    nvm::OpCost fetch;     //!< product-row reads from the crossbar
    nvm::OpCost adder;     //!< in-memory carry-save reduction

    nvm::OpCost
    total() const
    {
        return counting + fetch + adder;
    }
};

/** Result of one neuron's weighted accumulation. */
struct AccumResult
{
    double value = 0.0;     //!< weighted sum (including bias)
    AccumCost cost;
    size_t distinctProducts = 0;  //!< nonzero (w, u) counters
    size_t addends = 0;           //!< shifted terms entering the tree
    size_t countingCycles = 0;    //!< max weight-buffer occupancy
};

/**
 * Fixed-point scaling used by the in-memory adder: products are stored
 * as two's-complement integers at this many fraction bits.
 */
struct AccumFormat
{
    size_t fractionBits = 16;
    size_t accumulatorBits = 32;  //!< N in the paper's 13*N propagate

    int64_t
    toFixed(double x) const
    {
        return static_cast<int64_t>(
            x * static_cast<double>(int64_t(1) << fractionBits)
            + (x >= 0 ? 0.5 : -0.5));
    }

    double
    toReal(int64_t v) const
    {
        return static_cast<double>(v)
             / static_cast<double>(int64_t(1) << fractionBits);
    }
};

/**
 * Reusable scratch state for the allocation-free accumulation path.
 * The counter grid and buffer-depth array are kept all-zero between
 * runs: each run records exactly the cells/buckets it touched and
 * resets only those, so a neuron's cost is O(fan-in) regardless of the
 * w x u table size. Sized once (Workspace::prepare / ensure) and then
 * reused for every neuron, so the steady-state hot loop performs zero
 * heap allocations.
 */
struct AccumScratch
{
    // Counter grid and buffer-depth array live in cache-line-aligned
    // storage so the tally loop's cells never straddle lines at lane
    // boundaries; AlignedVec growth does not preserve contents, so
    // growth re-zeroes (the at-rest state is all-zero anyway).
    simd::AlignedVec<uint32_t> counters;     //!< grid, all-zero at rest
    simd::AlignedVec<uint32_t> bufferDepth;  //!< [w], all-zero at rest
    /** Half-width counter grid for the batched-lanes tally: counts are
     *  bounded by fan-in, so whenever fanIn <= 65535 the tally fits
     *  uint16 cells and the grid's cache footprint halves — the lane
     *  loop keeps counters, products and the csd-terms table L1-hot
     *  across all lanes of a neuron. All-zero at rest, like counters. */
    simd::AlignedVec<uint16_t> countersNarrow;
    std::vector<uint32_t> touchedCells;  //!< cells hit by the last run
    std::vector<uint16_t> touchedWeights;

    // Kernel-path scratch: fused (w << shift) | u pair keys produced by
    // KernelOps::pairKeys8/16 over one neuron's fan-in.
    simd::AlignedVec<uint16_t> keys;      //!< packed (8-bit-code) path
    simd::AlignedVec<uint32_t> keysWide;  //!< 16-bit-code path

    /**
     * csdTerms[c] = number of CSD terms in the signed-digit recoding of
     * count c (csdTerms[0] = 0). The kernel tally reads the table once
     * per touched cell while resetting it, so `addends` is tracked with
     * one table load per edge instead of re-decomposing every touched
     * cell. Pure function of c — grown on demand, shared by all
     * engines.
     */
    std::vector<int32_t> csdTerms;

    /** Grow (never shrink) to cover a w x u product table. */
    void
    ensure(size_t w, size_t u)
    {
        if (counters.size() < w * u)
            counters.ensureZeroed(w * u);
        if (bufferDepth.size() < w)
            bufferDepth.ensureZeroed(w);
        if (touchedCells.capacity() < w * u)
            touchedCells.reserve(w * u);
        if (touchedWeights.capacity() < w)
            touchedWeights.reserve(w);
    }

    /** Grow to cover the power-of-two padded [w << shift] key space the
     *  kernel paths tally into, plus a fan-in's worth of key scratch. */
    void
    ensurePadded(size_t w, uint32_t shift, size_t maxFanIn)
    {
        const size_t cells = w << shift;
        if (counters.size() < cells)
            counters.ensureZeroed(cells);
        if (countersNarrow.size() < cells)
            countersNarrow.ensureZeroed(cells);
        if (bufferDepth.size() < w)
            bufferDepth.ensureZeroed(w);
        if (touchedCells.capacity() < cells)
            touchedCells.reserve(cells);
        if (touchedWeights.capacity() < w)
            touchedWeights.reserve(w);
        keys.ensure(maxFanIn);
        keysWide.ensure(maxFanIn);
        if (csdTerms.size() <= maxFanIn)
            growCsdTerms(maxFanIn);
    }

    /** Extend csdTerms to cover counts up to maxCount (out of line —
     *  the CSD recoding is not hot-loop code). */
    void growCsdTerms(size_t maxCount);

    /**
     * Memoized CrossbarArray::addManyCost for the kernel path. The
     * adder cost is a pure function of (addend count, result width,
     * model anchors), so each distinct count is computed once through
     * the exact shared routine and replayed — the cached OpCost is
     * bitwise-identical to a fresh computation. Keys on the parameters
     * addManyCost reads and flushes if an engine with different
     * anchors shows up. Scratch is per-thread, so no synchronization.
     */
    const nvm::OpCost &adderCostFor(size_t addendCount,
                                    size_t resultBits,
                                    const nvm::CostModel &model);

  private:
    std::vector<nvm::OpCost> _adderCost;     //!< by addend count
    std::vector<uint8_t> _adderCostValid;
    size_t _adderResultBits = 0;
    size_t _adderCsaStageCycles = 0;
    size_t _adderCarryCycles = 0;
    Energy _adderNorEnergy{};
};

/**
 * Executes weighted accumulations for one neuron configuration:
 * a product table of w x u pre-computed values.
 */
class AccumulationEngine
{
  public:
    /**
     * @param productTable row-major [w][u] pre-computed products.
     * @param w weight codebook entries.
     * @param u input codebook entries.
     * @param model circuit-cost anchors.
     * @param format fixed-point layout of the crossbar rows.
     */
    AccumulationEngine(const Array<double> &productTable, size_t w,
                       size_t u, const nvm::CostModel &model,
                       AccumFormat format = {});

    /**
     * Accumulate one neuron's incoming edges.
     * @param weightCodes per-edge weight codes (size = fan-in).
     * @param inputCodes per-edge input codes (same size).
     * @param bias bias term added as one extra addend.
     */
    AccumResult run(const std::vector<uint16_t> &weightCodes,
                    const std::vector<uint16_t> &inputCodes,
                    double bias) const;

    /**
     * Allocation-free accumulation over caller-owned code arrays.
     * Bitwise-identical to the vector overload in every AccumResult
     * field (the fixed-point sum is order-independent and the analytic
     * costs depend only on counts), but performs no heap allocation and
     * touches only the O(fan-in) cells it uses via `scratch`.
     */
    AccumResult run(const uint16_t *weightCodes,
                    const uint16_t *inputCodes, size_t fanIn,
                    double bias, AccumScratch &scratch) const;

    /**
     * Kernel-path accumulation over packed 8-bit code arrays: pair keys
     * (w << keyShift) | u are produced by `ops.pairKeys8`, tallied into
     * the power-of-two padded counter grid, and reduced exactly like
     * the pointer overload. Bitwise-identical to run() in every
     * AccumResult field — same per-cell counts (the padded grid only
     * renumbers cells), same order-independent fixed-point sum, same
     * count-derived analytic costs. Requires packable().
     *
     * `countingCycles`, when non-null, is the precomputed
     * weightCountingCycles() of this exact weight-code array — the
     * counting phase depends only on the weight codes, so layer
     * contexts hoist it out of the per-neuron loop. Null computes it
     * from the keys (identical value, one extra histogram pass).
     */
    AccumResult runPacked(const simd::KernelOps &ops,
                          const uint8_t *weightCodes,
                          const uint8_t *inputCodes, size_t fanIn,
                          double bias, AccumScratch &scratch,
                          const uint32_t *countingCycles
                          = nullptr) const;

    /** Kernel-path accumulation over 16-bit code arrays (codebooks too
     *  large to pack); same equivalence contract as runPacked. */
    AccumResult runKeyed(const simd::KernelOps &ops,
                         const uint16_t *weightCodes,
                         const uint16_t *inputCodes, size_t fanIn,
                         double bias, AccumScratch &scratch,
                         const uint32_t *countingCycles
                         = nullptr) const;

    /**
     * Kernel-path accumulation over pair keys the caller already built
     * (KernelOps::pairKeys8Lanes writes one key stripe per batch lane
     * from a single weight-column load). `keys[i]` must equal
     * (weightCodes[i] << keyShift()) | inputCodes[i] for some packable
     * code pair — exactly what pairKeys8/pairKeys8Lanes produce — so
     * the result is bitwise-identical to runPacked over those codes.
     * The caller sizes `scratch` via ensurePadded, as runPacked does.
     */
    AccumResult runPrekeyed(const simd::KernelOps &ops,
                            const uint16_t *keys, size_t fanIn,
                            double bias, AccumScratch &scratch,
                            const uint32_t *countingCycles
                            = nullptr) const;

    /**
     * Batched-lanes accumulation: one call tallies every batch lane of
     * one output neuron. `keys` holds `lanes` stripes of `fanIn` pair
     * keys, lane L starting at L * keyStride — exactly the layout
     * KernelOps::pairKeys8Lanes writes — and all stripes must be keyed
     * from the same weight-code column (they are: the batched layer
     * paths build them from one column load). results[L] is overwritten
     * with lane L's AccumResult, bitwise-identical to
     * runPrekeyed(keys + L * keyStride, ...) and therefore to the
     * serial per-sample path.
     *
     * This is the batch hot loop, so it amortizes per-neuron work
     * across the lanes instead of redoing it per call: the counting
     * cycles (a pure function of the shared weight column) are taken
     * from the hint or derived once from lane 0's keys, the bias and
     * counting-energy terms are fixed up front, and the per-cell
     * readout fuses the value sum into the count pass (the CSD terms
     * of count c sum to exactly product * c, so product * count over
     * first-touch cells telescopes to the same int64 the gather-sum
     * computes — no separate gather pass). Counts and products read
     * through the half-width scratch grid and the engine's int32
     * product table when they fit, halving the tally's cache footprint
     * so the grid stays L1-resident across lanes.
     */
    void runPrekeyedLanes(const simd::KernelOps &ops,
                          const uint16_t *keys, size_t keyStride,
                          size_t lanes, size_t fanIn, double bias,
                          AccumScratch &scratch,
                          const uint32_t *countingCycles,
                          AccumResult *results) const;

    /**
     * countingCycles for a fixed weight-code array: the counting phase
     * drains one buffer per distinct weight code per cycle, so its
     * cycle count is the deepest buffer — max over wc of |{i : wc_i ==
     * wc}| — a pure function of the weight codes that layer contexts
     * precompute once per neuron/channel and pass back into
     * runPacked/runKeyed. Allocates; configure-time only.
     */
    uint32_t weightCountingCycles(const uint8_t *weightCodes,
                                  size_t fanIn) const;
    uint32_t weightCountingCycles(const uint16_t *weightCodes,
                                  size_t fanIn) const;

    /**
     * Allocation-free weightCountingCycles for hot-loop use (the
     * batched conv path shares one value across all lanes of a clipped
     * window, so it recomputes per position instead of per neuron).
     * Uses scratch.bufferDepth as the depth histogram and restores its
     * all-zero at-rest state before returning; identical value to the
     * allocating overload.
     */
    uint32_t weightCountingCycles(const uint8_t *weightCodes,
                                  size_t fanIn,
                                  AccumScratch &scratch) const;

    size_t weightEntries() const { return _w; }
    size_t inputEntries() const { return _u; }
    const AccumFormat &format() const { return _format; }

    /** True when both codebooks fit 8-bit packed codes. */
    bool packable() const { return _w <= 256 && _u <= 256; }

    /** Bits the weight code is shifted by in a fused pair key. */
    uint32_t keyShift() const { return _shift; }

    /** Padded [w << keyShift] cell count the kernel paths tally over. */
    size_t paddedCells() const { return _w << _shift; }

  private:
    template <typename Key>
    AccumResult runOverKeys(const simd::KernelOps &ops, const Key *keys,
                            size_t fanIn, double bias,
                            AccumScratch &scratch,
                            const uint32_t *countingCycles) const;

    std::vector<int64_t> _fixedProducts;  //!< [w*u] fixed-point products
    std::vector<int64_t> _fixedPadded;    //!< [w << _shift] when u is
                                          //!< not a power of two
    const int64_t *_padded = nullptr;     //!< padded-key product lookup
    /** Half-width padded product table for the batched-lanes tally,
     *  built when every fixed-point product fits int32 (sign-extending
     *  a stored value reproduces the wide entry exactly, so sums are
     *  bit-identical). Empty/null when some product needs 64 bits. */
    std::vector<int32_t> _fixedPadded32;
    const int32_t *_padded32 = nullptr;
    size_t _w;
    size_t _u;
    uint32_t _shift = 0;  //!< ceil(log2(u)): key = (w << shift) | u
    nvm::CostModel _model;
    AccumFormat _format;
};

} // namespace rapidnn::rna

#endif // RAPIDNN_RNA_ACCUMULATION_HH
