/**
 * @file
 * The RNA weighted-accumulation engine (paper Section 4.1).
 *
 * Incoming (weight code, input code) pairs are tallied by the parallel
 * counting hardware (w weight buffers, one pop per buffer per cycle),
 * each tallied product is shifted according to the signed-digit
 * decomposition of its repeat count, and the shifted addends are summed
 * by the in-memory carry-save adder tree. The engine is functional +
 * cost-accurate: the value is computed exactly in fixed point through
 * the same addend list the hardware would reduce.
 */

#ifndef RAPIDNN_RNA_ACCUMULATION_HH
#define RAPIDNN_RNA_ACCUMULATION_HH

#include <cstdint>
#include <vector>

#include "common/array.hh"
#include "nvm/cost_model.hh"
#include "nvm/crossbar.hh"
#include "nvm/op_cost.hh"

namespace rapidnn::rna {

/** Per-phase cost breakdown of one neuron's weighted accumulation. */
struct AccumCost
{
    nvm::OpCost counting;  //!< parallel counting of (w, u) pairs
    nvm::OpCost fetch;     //!< product-row reads from the crossbar
    nvm::OpCost adder;     //!< in-memory carry-save reduction

    nvm::OpCost
    total() const
    {
        return counting + fetch + adder;
    }
};

/** Result of one neuron's weighted accumulation. */
struct AccumResult
{
    double value = 0.0;     //!< weighted sum (including bias)
    AccumCost cost;
    size_t distinctProducts = 0;  //!< nonzero (w, u) counters
    size_t addends = 0;           //!< shifted terms entering the tree
    size_t countingCycles = 0;    //!< max weight-buffer occupancy
};

/**
 * Fixed-point scaling used by the in-memory adder: products are stored
 * as two's-complement integers at this many fraction bits.
 */
struct AccumFormat
{
    size_t fractionBits = 16;
    size_t accumulatorBits = 32;  //!< N in the paper's 13*N propagate

    int64_t
    toFixed(double x) const
    {
        return static_cast<int64_t>(
            x * static_cast<double>(int64_t(1) << fractionBits)
            + (x >= 0 ? 0.5 : -0.5));
    }

    double
    toReal(int64_t v) const
    {
        return static_cast<double>(v)
             / static_cast<double>(int64_t(1) << fractionBits);
    }
};

/**
 * Reusable scratch state for the allocation-free accumulation path.
 * The counter grid and buffer-depth array are kept all-zero between
 * runs: each run records exactly the cells/buckets it touched and
 * resets only those, so a neuron's cost is O(fan-in) regardless of the
 * w x u table size. Sized once (Workspace::prepare / ensure) and then
 * reused for every neuron, so the steady-state hot loop performs zero
 * heap allocations.
 */
struct AccumScratch
{
    std::vector<uint32_t> counters;      //!< [w*u] grid, all-zero at rest
    std::vector<uint32_t> bufferDepth;   //!< [w], all-zero at rest
    std::vector<uint32_t> touchedCells;  //!< cells hit by the last run
    std::vector<uint16_t> touchedWeights;

    /** Grow (never shrink) to cover a w x u product table. */
    void
    ensure(size_t w, size_t u)
    {
        if (counters.size() < w * u)
            counters.resize(w * u, 0);
        if (bufferDepth.size() < w)
            bufferDepth.resize(w, 0);
        if (touchedCells.capacity() < w * u)
            touchedCells.reserve(w * u);
        if (touchedWeights.capacity() < w)
            touchedWeights.reserve(w);
    }
};

/**
 * Executes weighted accumulations for one neuron configuration:
 * a product table of w x u pre-computed values.
 */
class AccumulationEngine
{
  public:
    /**
     * @param productTable row-major [w][u] pre-computed products.
     * @param w weight codebook entries.
     * @param u input codebook entries.
     * @param model circuit-cost anchors.
     * @param format fixed-point layout of the crossbar rows.
     */
    AccumulationEngine(const Array<double> &productTable, size_t w,
                       size_t u, const nvm::CostModel &model,
                       AccumFormat format = {});

    /**
     * Accumulate one neuron's incoming edges.
     * @param weightCodes per-edge weight codes (size = fan-in).
     * @param inputCodes per-edge input codes (same size).
     * @param bias bias term added as one extra addend.
     */
    AccumResult run(const std::vector<uint16_t> &weightCodes,
                    const std::vector<uint16_t> &inputCodes,
                    double bias) const;

    /**
     * Allocation-free accumulation over caller-owned code arrays.
     * Bitwise-identical to the vector overload in every AccumResult
     * field (the fixed-point sum is order-independent and the analytic
     * costs depend only on counts), but performs no heap allocation and
     * touches only the O(fan-in) cells it uses via `scratch`.
     */
    AccumResult run(const uint16_t *weightCodes,
                    const uint16_t *inputCodes, size_t fanIn,
                    double bias, AccumScratch &scratch) const;

    size_t weightEntries() const { return _w; }
    size_t inputEntries() const { return _u; }
    const AccumFormat &format() const { return _format; }

  private:
    std::vector<int64_t> _fixedProducts;  //!< [w*u] fixed-point products
    size_t _w;
    size_t _u;
    nvm::CostModel _model;
    AccumFormat _format;
};

} // namespace rapidnn::rna

#endif // RAPIDNN_RNA_ACCUMULATION_HH
