/**
 * @file
 * The RAPIDNN chip model: tiles of RNA blocks plus broadcast buffers
 * and a controller that maps reinterpreted layers onto them (paper
 * Section 4.3, Figure 9, Table 1).
 *
 * The simulator runs a reinterpreted model sample-by-sample through the
 * per-neuron RNA engines, scheduling neurons onto the available RNA
 * blocks in waves and pipelining layers across tiles. It produces both
 * the functional output (identical to the software reinterpreted model,
 * which tests assert) and a cycle/energy report.
 */

#ifndef RAPIDNN_RNA_CHIP_HH
#define RAPIDNN_RNA_CHIP_HH

#include <map>
#include <memory>
#include <span>
#include <vector>

#include "composer/reinterpreted_model.hh"
#include "rna/perf_report.hh"
#include "rna/rna_block.hh"
#include "rna/workspace.hh"

namespace rapidnn::rna {

/** Chip-level configuration. */
struct ChipConfig
{
    nvm::CostModel cost;
    size_t chips = 1;          //!< 1-chip or 8-chip deployments (Fig 15)
    /** Fraction of same-layer neurons sharing one RNA block
     *  (Section 5.6, Table 4). Shared neurons serialize. */
    double rnaSharing = 0.0;
    nvm::SearchMode searchMode = nvm::SearchMode::AbsoluteExact;
    /**
     * Use the zero-allocation fused-lookup inference path. Results are
     * bitwise-identical either way (values, codes, PerfReport —
     * tests/fastpath_equivalence_test.cc pins this); false keeps the
     * original allocating reference path, kept as the comparison
     * baseline for benchmarks and the equivalence guard.
     */
    bool fastPath = true;
    /**
     * Intra-op parallelism: task-pool lanes one infer() call may use
     * to run a layer's neuron shards concurrently (the host analogue
     * of the chip's parallel RNA blocks). The shard grid is fixed and
     * thread-count independent, every lane gets private scratch, and
     * all floating-point reductions run serially in neuron order — so
     * logits, codes, OpCost and PerfReport are bitwise identical at
     * any value (tests/intraop_determinism_test.cc pins this).
     * 1 (default) keeps the serial fast path. Only the fast path
     * shards; the reference path (fastPath = false) stays serial as
     * the comparison baseline.
     */
    size_t numThreads = 1;
    /**
     * SIMD kernel dispatch for the fast path's inner loops. Auto
     * (default) picks the best variant the build and host support
     * (overridable via the RAPIDNN_SIMD environment variable); Off
     * disables the kernel layer entirely, keeping the scalar reference
     * loops. Results are bitwise identical for every value — variant
     * selection is a pure speed knob (tests/kernel_equivalence_test.cc
     * pins this).
     */
    simd::Variant simd = simd::Variant::Auto;
    /**
     * Arena-sizing hint for inferBatch(): the number of batch lanes
     * the workspace's batch-strided buffers are sized for at
     * configure() time (the serving engine passes its
     * ServingConfig::maxBatch through here). Larger batches still
     * work — the buffers grow on first use; 1 (default) keeps the
     * batch arenas unallocated. A pure capacity knob: results are
     * identical at any value.
     */
    size_t maxBatch = 1;

    size_t totalRnas() const
    {
        return cost.rnasPerTile * cost.tilesPerChip * chips;
    }
};

/** Area roll-up of one RNA block (Figure 14 inner ring). */
struct RnaAreaBreakdown
{
    Area crossbar{};
    Area counter{};
    Area activationAm{};
    Area encodingAm{};
    Area other{};

    Area
    total() const
    {
        return crossbar + counter + activationAm + encodingAm + other;
    }
};

/** Area roll-up of the whole chip (Figure 14 outer ring, Table 1). */
struct ChipAreaBreakdown
{
    Area rna{};        //!< all RNA blocks
    Area memory{};     //!< data blocks (input/output crossbar storage)
    Area buffer{};
    Area controller{};
    Area other{};

    Area
    total() const
    {
        return rna + memory + buffer + controller + other;
    }
};

/**
 * The chip simulator.
 */
class Chip
{
  public:
    explicit Chip(ChipConfig config) : _config(config) {}

    /**
     * Configure the chip with a reinterpreted model. Keeps a reference;
     * the model must outlive the chip.
     */
    void configure(const composer::ReinterpretedModel &model);

    /**
     * Run one sample. Returns raw logits (bit-identical to the software
     * reinterpreted model) and fills the report. Const and free of
     * shared mutable state: concurrent calls on one chip (or on
     * clones) produce bitwise-identical results to serial calls.
     */
    std::vector<double> infer(const nn::Tensor &x,
                              PerfReport &report) const;

    /**
     * infer() with a per-call intra-op thread budget: 0 uses
     * ChipConfig::numThreads, any other value overrides it for this
     * call only. The serving engine uses this to borrow pool lanes
     * when its admission queue is shallow. Results are bitwise
     * identical at any budget.
     */
    std::vector<double> infer(const nn::Tensor &x, PerfReport &report,
                              size_t numThreadsOverride) const;

    /**
     * Run a batch of samples through the chip, executing each layer
     * once for the whole batch so per-output-neuron work (weight-code
     * column loads, fused pair-key construction, counting-cycle
     * hints, AM batch lookups) is amortized across the batch lanes
     * (KernelOps::pairKeys8Lanes builds every lane's keys from a
     * single column load). Logits, codes and the per-lane PerfReports
     * are bitwise identical to inputs.size() sequential infer() calls
     * at any thread count and SIMD variant
     * (tests/batch_equivalence_test.cc pins this). `reports` must
     * hold at least inputs.size() entries; returns one logits vector
     * per input, in order.
     */
    std::vector<std::vector<double>>
    inferBatch(std::span<const nn::Tensor> inputs,
               std::span<PerfReport> reports,
               size_t numThreadsOverride = 0) const;

    /** Classification error rate with cost accounting folded into one
     *  averaged report. */
    double errorRate(const nn::Dataset &data, PerfReport &avgReport) const;

    /**
     * A fresh chip with the same configuration, wired to the same
     * (shared, read-only) reinterpreted model — one replica per
     * serving-runtime worker. The replica shares the configured chip's
     * immutable layer contexts (product tables, AM blocks, transposed
     * columns) and only builds its own mutable workspace, so replica
     * instantiation is O(workspace), not O(model).
     */
    Chip clone() const;

    /** Per-RNA area breakdown (Figure 14). */
    RnaAreaBreakdown rnaArea() const;

    /** Whole-chip area breakdown (Figure 14, Table 1). */
    ChipAreaBreakdown chipArea() const;

    /** Peak chip power (Table 1 roll-up). */
    Power chipPower() const;

    const ChipConfig &config() const { return _config; }

  private:
    /**
     * The immutable per-model hardware state: one context per compute
     * layer (including layers nested inside residual blocks), keyed by
     * the RLayer's address. Built once by configure() and shared
     * read-only across clone() replicas — contexts are never mutated
     * after construction, so replicas need no copies.
     */
    struct ContextSet
    {
        std::vector<std::unique_ptr<RnaLayerContext>> contexts;
        std::map<const composer::RLayer *, size_t> byLayer;
    };

    ChipConfig _config;
    const composer::ReinterpretedModel *_model = nullptr;
    /** Resolved kernel dispatch table (nullptr = scalar reference
     *  loops); set once by configure(), shared by clones. */
    const simd::KernelOps *_kops = nullptr;
    std::shared_ptr<const ContextSet> _contexts;
    /** Shared inference workspace, built at configure time and leased
     *  per infer() call (concurrent callers fall back to spares). */
    mutable std::unique_ptr<Workspace> _workspace;

    struct LayerRun
    {
        composer::EncodedTensor output;
        std::vector<double> raw;
        NeuronCost cost;        //!< summed over all neurons
        uint64_t stageCycles;   //!< wall cycles with RNA parallelism
    };

    /**
     * Per-sample accounting accumulated across the layer walk. infer()
     * keeps one, inferBatch() keeps one per lane; both feed the same
     * tally/finalize helpers so the per-lane PerfReports of a batch
     * are bitwise identical to sequential infer() reports.
     */
    struct InferTally
    {
        uint64_t latencyCycles = 0;
        uint64_t worstStage = 0;
        Energy totalEnergy{};
        NeuronCost totals;
        uint64_t bufferCycles = 0;
        Energy bufferEnergy{};
        nvm::OpCost inputEncode;
    };

    void configureLayers(ContextSet &set,
                         const std::vector<composer::RLayer> &layers);

    /** Build this chip's private workspace from the shared contexts
     *  (pool seeding, conv plans, lane scratch). */
    void buildWorkspace();

    /** @param threads intra-op lane budget for this call (>= 1). */
    LayerRun runLayer(const composer::RLayer &layer,
                      const composer::EncodedTensor &in,
                      bool lastCompute, Workspace &ws,
                      size_t threads) const;

    /**
     * Run one layer for a whole batch, filling runs[L] with exactly
     * what runLayer(layer, ins[L], ...) would produce. Dense, conv and
     * recurrent layers with a packed kernel context take the batched
     * kernel path (shared weight-column work, per-lane key stripes);
     * everything else falls back to per-lane runLayer calls in lane
     * order, which is trivially identical.
     */
    void runLayerBatch(const composer::RLayer &layer,
                       const std::vector<composer::EncodedTensor> &ins,
                       bool lastCompute, Workspace &ws, size_t threads,
                       std::vector<LayerRun> &runs) const;

    /** Input-encoding cost of one sample (CAM search per element plus
     *  the data-block stream-out). */
    nvm::OpCost inputEncodeCost(size_t numel) const;

    /** Fold one layer's run into a sample tally: totals, latency,
     *  worst stage and the inter-layer broadcast-buffer traffic. */
    void tallyLayerRun(InferTally &t, const LayerRun &run,
                       const composer::RLayer &layer,
                       bool isLastCompute) const;

    /** Turn a finished tally into the PerfReport: write-back cost,
     *  active energies, occupancy leakage and the category split. */
    void finalizeReport(InferTally &t, size_t logitCount,
                        PerfReport &report) const;
};

} // namespace rapidnn::rna

#endif // RAPIDNN_RNA_CHIP_HH
