/**
 * @file
 * Aggregated performance/energy report for an inference run, broken
 * down by the paper's categories (Figure 13): weighted accumulation,
 * activation function, encoding, pooling, and other (buffer,
 * controller, interconnect).
 */

#ifndef RAPIDNN_RNA_PERF_REPORT_HH
#define RAPIDNN_RNA_PERF_REPORT_HH

#include <string>
#include <vector>

#include "common/units.hh"
#include "nvm/op_cost.hh"

namespace rapidnn::rna {

/** One breakdown category. */
struct CategoryCost
{
    std::string name;
    Time time{};
    Energy energy{};
};

/** Report for one inference (or a batch; fields are totals). */
struct PerfReport
{
    Time latency{};        //!< end-to-end latency per inference
    Time stageTime{};      //!< slowest pipeline stage (throughput limit)
    Energy energy{};       //!< total energy per inference
    uint64_t totalOps = 0; //!< DNN operations represented
    uint64_t inferences = 0; //!< samples folded into this report
    std::vector<CategoryCost> breakdown;

    double
    throughputOpsPerSec() const
    {
        return stageTime.sec() > 0
            ? static_cast<double>(totalOps) / stageTime.sec() : 0.0;
    }

    double edp() const { return energy.j() * latency.sec(); }

    /** Find a category by name (zeros when absent). */
    CategoryCost category(const std::string &name) const;

    /**
     * Zero every field while keeping the breakdown vector's capacity,
     * so a report reused across infer() calls allocates nothing in
     * steady state (category names are short enough for SSO).
     */
    void
    reset()
    {
        latency = Time{};
        stageTime = Time{};
        energy = Energy{};
        totalOps = 0;
        inferences = 0;
        breakdown.clear();
    }

    /** Sum another report into this one (e.g. layer roll-up). */
    void addCategory(const std::string &name, Time t, Energy e);

    /**
     * Accumulate another report into this one (per-worker roll-up in
     * the serving runtime). Times, energies, op and inference counts
     * sum; stageTime keeps the max since it is a throughput limit, not
     * a total. A single-inference report counts as one inference even
     * if its `inferences` field was left at zero.
     */
    void merge(const PerfReport &o);
};

} // namespace rapidnn::rna

#endif // RAPIDNN_RNA_PERF_REPORT_HH
