/**
 * @file
 * One RNA block: the hardware unit that executes one reinterpreted
 * neuron (paper Figure 7). Combines the weighted-accumulation engine
 * with the two AM blocks (activation function and encoding/pooling).
 */

#ifndef RAPIDNN_RNA_RNA_BLOCK_HH
#define RAPIDNN_RNA_RNA_BLOCK_HH

#include <memory>
#include <optional>

#include "composer/reinterpreted_model.hh"
#include "nvm/am_block.hh"
#include "rna/accumulation.hh"
#include "rna/workspace.hh"

namespace rapidnn::rna {

// NeuronCost (the per-phase cost breakdown of one neuron evaluation,
// Figure 13) is defined in rna/workspace.hh, which this header
// includes: the workspace stores one per neuron for the deterministic
// intra-op reduction.

/** Output of one neuron evaluation. */
struct NeuronResult
{
    double rawValue = 0.0;    //!< post-activation real value
    uint16_t code = 0;        //!< encoded value (when an encoder exists)
    bool encoded = false;
    NeuronCost cost;
};

/**
 * The per-layer hardware context shared by all RNA blocks computing
 * neurons of the same reinterpreted layer: the accumulation engine per
 * weight codebook, the activation AM and the encoding AM.
 */
class RnaLayerContext
{
  public:
    /**
     * Build the context for a compute layer.
     * @param layer reinterpreted Dense/Conv layer.
     * @param model circuit-cost anchors.
     * @param mode NDCAM search behaviour.
     */
    RnaLayerContext(const composer::RLayer &layer,
                    const nvm::CostModel &model,
                    nvm::SearchMode mode = nvm::SearchMode::AbsoluteExact);

    /**
     * Evaluate one neuron.
     * @param channel weight-codebook index (0 for dense layers).
     * @param weightCodes the neuron's encoded weights.
     * @param inputCodes encoded inputs, parallel to weightCodes.
     * @param bias the neuron's bias.
     */
    NeuronResult evaluate(size_t channel,
                          const std::vector<uint16_t> &weightCodes,
                          const std::vector<uint16_t> &inputCodes,
                          double bias) const;

    /**
     * Allocation-free twin of evaluate() over caller-owned code arrays
     * plus reusable counting scratch. Bitwise-identical results
     * (value, code, every cost field); tests pin the equivalence.
     */
    NeuronResult evaluateFast(size_t channel,
                              const uint16_t *weightCodes,
                              const uint16_t *inputCodes, size_t fanIn,
                              double bias, AccumScratch &scratch) const;

    /**
     * Max-pool a window of encoded values by loading them into the
     * encoding/pooling AM and issuing one MAX search (Section 4.2.1).
     */
    static uint16_t poolMax(const std::vector<uint16_t> &codes,
                            const nvm::CostModel &model,
                            nvm::OpCost &cost);

    /**
     * Allocation-free twin of poolMax(): charges the identical load +
     * MAX-search cost without materializing an Ndcam, and resolves the
     * same winner (first occurrence of the maximum code).
     */
    static uint16_t poolMaxFast(const uint16_t *codes, size_t count,
                                const nvm::CostModel &model,
                                nvm::OpCost &cost);

    /**
     * One unrolled step of a recurrent neuron: accumulate the x-path
     * products plus the feedback-path products (the previous step's
     * encoded output from the input FIFO), apply the activation table,
     * and encode the new hidden state into the state codebook.
     * Only valid on Recurrent layers.
     */
    NeuronResult evaluateRecurrentStep(
        const std::vector<uint16_t> &xWeightCodes,
        const std::vector<uint16_t> &xCodes,
        const std::vector<uint16_t> &hWeightCodes,
        const std::vector<uint16_t> &hCodes, double bias) const;

    /** Allocation-free twin of evaluateRecurrentStep(). */
    NeuronResult evaluateRecurrentStepFast(
        const uint16_t *xWeightCodes, const uint16_t *xCodes,
        size_t features, const uint16_t *hWeightCodes,
        const uint16_t *hCodes, size_t hidden, double bias,
        AccumScratch &scratch) const;

    /** Encode a raw value into the recurrent state codebook. */
    uint16_t encodeState(double value, nvm::OpCost &cost) const;

    /**
     * Column-major (neuron-major) weight codes, transposed once at
     * configure time so the fast path hands the engine a contiguous
     * run instead of striding through the row-major layer arrays.
     */
    const uint16_t *
    denseColumn(size_t j) const
    {
        return _denseColumns.data() + j * _layer.inCount;
    }

    /** Neuron-major input-path weight codes (recurrent layers). */
    const uint16_t *
    recurrentXColumn(size_t h) const
    {
        return _recXColumns.data() + h * _layer.inCount;
    }

    /** Neuron-major feedback-path weight codes (recurrent layers). */
    const uint16_t *
    recurrentHColumn(size_t h) const
    {
        return _recHColumns.data() + h * _layer.outCount;
    }

    /** Pre-size a workspace's buffers for this layer (configure time),
     *  so steady-state inference never grows them. */
    void prepareWorkspace(Workspace &ws) const;

    /** Pre-size one intra-op lane's scratch for this layer (configure
     *  time), the per-lane analogue of prepareWorkspace(). */
    void prepareScratch(IntraOpScratch &scratch) const;

    const composer::RLayer &layer() const { return _layer; }

    /** Crossbar rows this layer's product tables occupy. */
    size_t productRows() const;

  private:
    const composer::RLayer &_layer;
    nvm::CostModel _model;
    std::vector<AccumulationEngine> _engines;  //!< one per codebook
    std::optional<nvm::AmBlock> _activationAm;
    std::optional<nvm::AmBlock> _encodingAm;
    /** Feedback-path engine and state-encoding AM (recurrent only). */
    std::optional<AccumulationEngine> _stateEngine;
    std::optional<nvm::AmBlock> _stateEncodingAm;
    /** Transposed weight-code matrices for the fast path. Views of
     *  the layer's precomputed (blob-loaded) columns when present,
     *  otherwise owning copies derived at configure time. */
    Array<uint16_t> _denseColumns;
    Array<uint16_t> _recXColumns;
    Array<uint16_t> _recHColumns;
};

} // namespace rapidnn::rna

#endif // RAPIDNN_RNA_RNA_BLOCK_HH
