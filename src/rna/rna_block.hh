/**
 * @file
 * One RNA block: the hardware unit that executes one reinterpreted
 * neuron (paper Figure 7). Combines the weighted-accumulation engine
 * with the two AM blocks (activation function and encoding/pooling).
 */

#ifndef RAPIDNN_RNA_RNA_BLOCK_HH
#define RAPIDNN_RNA_RNA_BLOCK_HH

#include <memory>
#include <optional>

#include "composer/reinterpreted_model.hh"
#include "nvm/am_block.hh"
#include "rna/accumulation.hh"
#include "rna/workspace.hh"

namespace rapidnn::rna {

// NeuronCost (the per-phase cost breakdown of one neuron evaluation,
// Figure 13) is defined in rna/workspace.hh, which this header
// includes: the workspace stores one per neuron for the deterministic
// intra-op reduction.

/** Output of one neuron evaluation. */
struct NeuronResult
{
    double rawValue = 0.0;    //!< post-activation real value
    uint16_t code = 0;        //!< encoded value (when an encoder exists)
    bool encoded = false;
    NeuronCost cost;
};

/**
 * The per-layer hardware context shared by all RNA blocks computing
 * neurons of the same reinterpreted layer: the accumulation engine per
 * weight codebook, the activation AM and the encoding AM.
 */
class RnaLayerContext
{
  public:
    /**
     * Build the context for a compute layer.
     * @param layer reinterpreted Dense/Conv layer.
     * @param model circuit-cost anchors.
     * @param mode NDCAM search behaviour.
     */
    RnaLayerContext(const composer::RLayer &layer,
                    const nvm::CostModel &model,
                    nvm::SearchMode mode = nvm::SearchMode::AbsoluteExact,
                    const simd::KernelOps *kops = nullptr);

    /**
     * Evaluate one neuron.
     * @param channel weight-codebook index (0 for dense layers).
     * @param weightCodes the neuron's encoded weights.
     * @param inputCodes encoded inputs, parallel to weightCodes.
     * @param bias the neuron's bias.
     */
    NeuronResult evaluate(size_t channel,
                          const std::vector<uint16_t> &weightCodes,
                          const std::vector<uint16_t> &inputCodes,
                          double bias) const;

    /**
     * Allocation-free twin of evaluate() over caller-owned code arrays
     * plus reusable counting scratch. Bitwise-identical results
     * (value, code, every cost field); tests pin the equivalence.
     */
    NeuronResult evaluateFast(size_t channel,
                              const uint16_t *weightCodes,
                              const uint16_t *inputCodes, size_t fanIn,
                              double bias, AccumScratch &scratch) const;

    /**
     * Max-pool a window of encoded values by loading them into the
     * encoding/pooling AM and issuing one MAX search (Section 4.2.1).
     */
    static uint16_t poolMax(const std::vector<uint16_t> &codes,
                            const nvm::CostModel &model,
                            nvm::OpCost &cost);

    /**
     * Allocation-free twin of poolMax(): charges the identical load +
     * MAX-search cost without materializing an Ndcam, and resolves the
     * same winner (first occurrence of the maximum code). When a
     * kernel table is supplied the max reduction runs vectorized
     * (bitwise-identical winner; codes are order-preserving values).
     */
    static uint16_t poolMaxFast(const uint16_t *codes, size_t count,
                                const nvm::CostModel &model,
                                nvm::OpCost &cost,
                                const simd::KernelOps *ops = nullptr);

    /**
     * One unrolled step of a recurrent neuron: accumulate the x-path
     * products plus the feedback-path products (the previous step's
     * encoded output from the input FIFO), apply the activation table,
     * and encode the new hidden state into the state codebook.
     * Only valid on Recurrent layers.
     */
    NeuronResult evaluateRecurrentStep(
        const std::vector<uint16_t> &xWeightCodes,
        const std::vector<uint16_t> &xCodes,
        const std::vector<uint16_t> &hWeightCodes,
        const std::vector<uint16_t> &hCodes, double bias) const;

    /** Allocation-free twin of evaluateRecurrentStep(). */
    NeuronResult evaluateRecurrentStepFast(
        const uint16_t *xWeightCodes, const uint16_t *xCodes,
        size_t features, const uint16_t *hWeightCodes,
        const uint16_t *hCodes, size_t hidden, double bias,
        AccumScratch &scratch) const;

    /** Encode a raw value into the recurrent state codebook. */
    uint16_t encodeState(double value, nvm::OpCost &cost) const;

    // ------------------------------------------------------------------
    // SIMD kernel path (PR 8). Only usable when the context was built
    // with a kernel table; every method is bitwise-identical to its
    // scalar twin (tests/kernel_equivalence_test.cc pins the contract).
    // ------------------------------------------------------------------

    /** The kernel table this context dispatches through (nullptr when
     *  the kernel layer is off). */
    const simd::KernelOps *kernelOps() const { return _kops; }

    /** True when every forward-path codebook fits 8-bit packed codes
     *  (weight + input codebooks <= 256 entries). */
    bool packed() const { return _packed; }

    /** True when the recurrent feedback path also packs (state
     *  codebook <= 256 entries); implies packed(). */
    bool packedRecurrent() const { return _packedRec; }

    /** Packed (uint8) twin of denseColumn(). Valid when packed(). */
    const uint8_t *
    denseColumn8(size_t j) const
    {
        return _denseColumns8.data() + j * _layer.inCount;
    }

    /** Packed contiguous per-channel conv weight codes (full-window
     *  fast path feeds these straight to pairKeys8). Valid when
     *  packed(). */
    const uint8_t *
    convChannel8(size_t oc) const
    {
        return _convChannel8[oc].data();
    }

    /** Packed twin of recurrentXColumn(). Valid when packedRecurrent(). */
    const uint8_t *
    recurrentXColumn8(size_t h) const
    {
        return _recXColumns8.data() + h * _layer.inCount;
    }

    /** Packed twin of recurrentHColumn(). Valid when packedRecurrent(). */
    const uint8_t *
    recurrentHColumn8(size_t h) const
    {
        return _recHColumns8.data() + h * _layer.outCount;
    }

    /** Kernel-path weighted accumulation over packed codes (accum
     *  stage only; the caller batches activation/encoding). */
    AccumResult accumulatePacked(size_t channel, const uint8_t *w8,
                                 const uint8_t *x8, size_t fanIn,
                                 double bias, AccumScratch &sc) const;

    /** Kernel-path weighted accumulation over 16-bit codes (codebooks
     *  too large to pack). */
    AccumResult accumulateKeyed(size_t channel, const uint16_t *w,
                                const uint16_t *x, size_t fanIn,
                                double bias, AccumScratch &sc) const;

    /**
     * Kernel-path weighted accumulation over pair keys the caller
     * already built for `channel` (the batched path constructs every
     * lane's keys from one weight-column load via pairKeys8Lanes).
     * Bitwise-identical to accumulatePacked over the originating code
     * arrays. `sc` must have been sized by prepareWorkspace /
     * prepareScratch (runPrekeyed does not grow it); `countingCycles`
     * is the hoisted hint for the weight column, or nullptr to
     * recompute from the keys.
     */
    AccumResult accumulatePrekeyed(size_t channel, const uint16_t *keys,
                                   size_t fanIn, double bias,
                                   AccumScratch &sc,
                                   const uint32_t *countingCycles
                                   = nullptr) const;

    /**
     * Batched-lanes variant: one call accumulates every batch lane of
     * one output neuron from the lane-strided key stripes
     * pairKeys8Lanes wrote (lane L at keys + L * keyStride), filling
     * results[0..lanes). Bitwise-identical per lane to
     * accumulatePrekeyed over the lane's stripe; the per-neuron
     * constants (counting cycles, bias, counting energy) are computed
     * once and shared across the lanes — the inferBatch hot loop.
     */
    void accumulatePrekeyedLanes(size_t channel, const uint16_t *keys,
                                 size_t keyStride, size_t lanes,
                                 size_t fanIn, double bias,
                                 AccumScratch &sc,
                                 const uint32_t *countingCycles,
                                 AccumResult *results) const;

    /**
     * Counting cycles for an arbitrary packed weight window of
     * `channel` (clipped conv windows gathered into scratch): returns
     * the hoisted hint when the pointer is a canonical weight array,
     * otherwise recomputes allocation-free through `sc`. The batched
     * conv path derives this once per (position, channel) and shares
     * it across every lane.
     */
    uint32_t packedCountingCycles(size_t channel, const uint8_t *w8,
                                  size_t fanIn, AccumScratch &sc) const;

    /** Pair-key shift of channel's engine: key = (w << shift) | u. */
    uint32_t
    keyShiftFor(size_t channel) const
    {
        return _engines[channel].keyShift();
    }

    /** Pair-key shift of the recurrent feedback-path engine. */
    uint32_t
    stateKeyShift() const
    {
        return _stateEngine->keyShift();
    }

    /** Hoisted counting-cycle hints per canonical weight column (null
     *  when the kernel layer is off or the layer kind has none). */
    const uint32_t *
    denseCountingHint(size_t j) const
    {
        return _denseCounting.empty() ? nullptr : &_denseCounting[j];
    }

    const uint32_t *
    recXCountingHint(size_t h) const
    {
        return _recXCounting.empty() ? nullptr : &_recXCounting[h];
    }

    const uint32_t *
    recHCountingHint(size_t h) const
    {
        return _recHCounting.empty() ? nullptr : &_recHCounting[h];
    }

    /** Per-neuron kernel-path evaluation (packed accumulation + scalar
     *  AM lookups) for the sharded executors; bitwise-identical to
     *  evaluateFast(). */
    NeuronResult evaluatePacked(size_t channel, const uint8_t *w8,
                                const uint8_t *x8, size_t fanIn,
                                double bias, AccumScratch &sc) const;

    /** Per-neuron kernel-path recurrent step over packed codes;
     *  bitwise-identical to evaluateRecurrentStepFast(). */
    NeuronResult evaluateRecurrentStepPacked(
        const uint8_t *xWeightCodes, const uint8_t *xCodes,
        size_t features, const uint8_t *hWeightCodes,
        const uint8_t *hCodes, size_t hidden, double bias,
        AccumScratch &scratch) const;

    /**
     * Prekeyed twin of evaluateRecurrentStepPacked: both operand
     * paths' pair keys are built by the caller (one weight-column load
     * per pairKeys8Lanes call serving every batch lane).
     * Bitwise-identical to the packed form over the originating codes.
     */
    NeuronResult evaluateRecurrentStepPrekeyed(
        const uint16_t *xKeys, size_t features, const uint16_t *hKeys,
        size_t hidden, double bias, AccumScratch &scratch,
        const uint32_t *xCounting, const uint32_t *hCounting) const;

    bool hasActivation() const { return _activationAm.has_value(); }
    bool hasEncoder() const { return _encodingAm.has_value(); }

    /** The constant analytic cost one activation lookup charges. */
    const nvm::OpCost &activationQueryCost() const
    {
        return _activationQueryCost;
    }

    /** The constant analytic cost one encoding lookup charges. */
    const nvm::OpCost &encodingQueryCost() const
    {
        return _encodingQueryCost;
    }

    /**
     * Batched activation over a contiguous value range: out[i] = the
     * activation AM's payload for in[i] (identity copy when the layer
     * has no activation table). Functional-only — the caller charges
     * activationQueryCost() per neuron. in == out is allowed.
     * keyScratch/rowScratch are caller-sized to n.
     */
    void activateBatch(const double *in, double *out, size_t n,
                       uint32_t *keyScratch, uint32_t *rowScratch) const;

    /**
     * Batched output encoding: codes[i] = the encoding-AM row of
     * in[i]. Functional-only — the caller charges encodingQueryCost()
     * per neuron. Requires hasEncoder().
     */
    void encodeBatch(const double *in, size_t n, uint32_t *keyScratch,
                     uint32_t *rowScratch, uint16_t *codes) const;

    /**
     * Column-major (neuron-major) weight codes, transposed once at
     * configure time so the fast path hands the engine a contiguous
     * run instead of striding through the row-major layer arrays.
     */
    const uint16_t *
    denseColumn(size_t j) const
    {
        return _denseColumns.data() + j * _layer.inCount;
    }

    /** Neuron-major input-path weight codes (recurrent layers). */
    const uint16_t *
    recurrentXColumn(size_t h) const
    {
        return _recXColumns.data() + h * _layer.inCount;
    }

    /** Neuron-major feedback-path weight codes (recurrent layers). */
    const uint16_t *
    recurrentHColumn(size_t h) const
    {
        return _recHColumns.data() + h * _layer.outCount;
    }

    /** Pre-size a workspace's buffers for this layer (configure time),
     *  so steady-state inference never grows them. */
    void prepareWorkspace(Workspace &ws) const;

    /** Pre-size one intra-op lane's scratch for this layer (configure
     *  time), the per-lane analogue of prepareWorkspace(). */
    void prepareScratch(IntraOpScratch &scratch) const;

    const composer::RLayer &layer() const { return _layer; }

    /** Crossbar rows this layer's product tables occupy. */
    size_t productRows() const;

  private:
    /** Shared sizing of one AccumScratch's kernel-path buffers. */
    void prepareKernelScratch(AccumScratch &accum) const;

    /**
     * The precomputed counting-cycle hint for a weight-code pointer the
     * caller passed into a kernel accumulation, or nullptr when the
     * pointer is not one of this context's canonical weight arrays
     * (e.g. a clipped conv window gathered into lane scratch — the
     * engine then recomputes the identical value from the keys).
     * Counting cycles depend only on the weight codes, so each
     * canonical array's value is hoisted to configure time.
     */
    const uint32_t *countingHint(size_t channel, const void *w,
                                 size_t fanIn) const;

    const composer::RLayer &_layer;
    nvm::CostModel _model;
    std::vector<AccumulationEngine> _engines;  //!< one per codebook
    std::optional<nvm::AmBlock> _activationAm;
    std::optional<nvm::AmBlock> _encodingAm;
    /** Feedback-path engine and state-encoding AM (recurrent only). */
    std::optional<AccumulationEngine> _stateEngine;
    std::optional<nvm::AmBlock> _stateEncodingAm;
    /** Transposed weight-code matrices for the fast path. Views of
     *  the layer's precomputed (blob-loaded) columns when present,
     *  otherwise owning copies derived at configure time. */
    Array<uint16_t> _denseColumns;
    Array<uint16_t> _recXColumns;
    Array<uint16_t> _recHColumns;
    /** Kernel dispatch table (nullptr = kernel layer off). */
    const simd::KernelOps *_kops = nullptr;
    bool _packed = false;     //!< forward path packs to uint8 codes
    bool _packedRec = false;  //!< feedback path also packs
    /** Packed (uint8) twins of the weight-code arrays: views of
     *  blob-precomputed sections when present, otherwise owned
     *  narrowed copies derived at configure time. */
    Array<uint8_t> _denseColumns8;
    std::vector<Array<uint8_t>> _convChannel8;  //!< per out-channel
    Array<uint8_t> _recXColumns8;
    Array<uint8_t> _recHColumns8;
    /** Constant analytic per-lookup costs, precomputed so the batch
     *  paths charge without re-deriving them per neuron. */
    nvm::OpCost _activationQueryCost;
    nvm::OpCost _encodingQueryCost;
    /** Precomputed AccumulationEngine::weightCountingCycles() per
     *  canonical weight array (kernel contexts only): dense/recurrent
     *  per neuron column, conv per output channel's full window. */
    std::vector<uint32_t> _denseCounting;
    std::vector<uint32_t> _convCounting;
    std::vector<uint32_t> _recXCounting;
    std::vector<uint32_t> _recHCounting;
};

} // namespace rapidnn::rna

#endif // RAPIDNN_RNA_RNA_BLOCK_HH
