/**
 * @file
 * The top-level RAPIDNN API: trains (or accepts) a float model, runs
 * the DNN composer, configures the simulated accelerator, and reports
 * accuracy / performance / energy. This is the entry point examples
 * and benches use; everything underneath is reachable for fine-grained
 * control.
 */

#ifndef RAPIDNN_CORE_RAPIDNN_HH
#define RAPIDNN_CORE_RAPIDNN_HH

#include <memory>
#include <optional>

#include "baselines/accelerator_model.hh"
#include "composer/composer.hh"
#include "nn/synthetic.hh"
#include "nn/topology.hh"
#include "rna/chip.hh"
#include "rna/perf_model.hh"
#include "runtime/serving_engine.hh"

namespace rapidnn::core {

/** End-to-end configuration of a RAPIDNN deployment. */
struct RapidnnConfig
{
    composer::ComposerConfig composer;
    rna::ChipConfig chip;
};

/** Everything a full run produces. */
struct RunReport
{
    composer::ComposeResult compose;   //!< accuracy + retraining history
    rna::PerfReport perf;              //!< accelerator timing/energy
    double acceleratorError = 0.0;     //!< error measured on the chip sim
    size_t memoryBytes = 0;            //!< accelerator table storage

    double deltaE() const { return compose.deltaE; }
};

/**
 * A composed RAPIDNN deployment: owns the reinterpreted model and the
 * chip simulator configured with it.
 */
class Rapidnn
{
  public:
    explicit Rapidnn(RapidnnConfig config) : _config(config) {}

    /**
     * Full pipeline: compose the trained network (retraining it in
     * place), configure the chip, and measure error + performance over
     * the evaluation set.
     */
    RunReport run(nn::Network &net, const nn::Dataset &train,
                  const nn::Dataset &validation);

    /**
     * One-shot reinterpretation without the retraining loop (used by
     * configuration sweeps where speed matters more than the last few
     * tenths of accuracy).
     */
    RunReport runOneShot(nn::Network &net, const nn::Dataset &train,
                         const nn::Dataset &validation);

    /** The chip simulator (valid after run/runOneShot). */
    rna::Chip &chip() { return *_chip; }

    /**
     * Start a batched multi-threaded serving engine over the composed
     * model (valid after run/runOneShot). The engine reads this
     * deployment's model in place, so the Rapidnn object must outlive
     * it.
     */
    std::unique_ptr<runtime::ServingEngine>
    serve(const runtime::ServingConfig &serving = {}) const;

    /**
     * Write the composed model (valid after run/runOneShot) as a
     * single-file .rnnb blob: every weight block, codebook, product
     * table and precomputed index map packed aligned so serveBlob and
     * blob::ModelBlob::open can map it back zero-copy.
     */
    void exportBlob(const std::string &path) const;

    /**
     * Serve straight from a .rnnb blob file without composing: maps
     * the file, validates it, and spins up a worker pool whose
     * replicas all view the one shared mapping.
     */
    static std::unique_ptr<runtime::ServingEngine>
    serveBlob(const std::string &path, const rna::ChipConfig &chip,
              const runtime::ServingConfig &serving = {});

    /** The composed model (valid after run/runOneShot). */
    const composer::ReinterpretedModel &model() const { return _model; }

    const RapidnnConfig &config() const { return _config; }

  private:
    RapidnnConfig _config;
    composer::ReinterpretedModel _model;
    std::unique_ptr<rna::Chip> _chip;

    RunReport measure(composer::ComposeResult compose,
                      const nn::Dataset &validation);
};

/**
 * Builders for the paper's six benchmark models (Table 2 topologies at
 * the reduced stand-in scale documented in DESIGN.md).
 */
struct BenchmarkModel
{
    nn::Benchmark benchmark;
    nn::Network network;
    nn::Dataset train;
    nn::Dataset validation;
    double baselineError = 0.0;  //!< float error after training
    nn::NetworkShape shape;      //!< for the performance models
};

/** Options controlling stand-in training scale. */
struct BenchmarkOptions
{
    size_t samples = 0;        //!< 0 = per-benchmark default
    size_t trainEpochs = 8;
    double holdout = 0.25;
    /** Scale factor on hidden widths (1.0 = the paper's Table 2). */
    double widthScale = 1.0;
    uint64_t seed = 77;
};

/** Train a float stand-in for one of the paper's six benchmarks. */
BenchmarkModel buildBenchmarkModel(nn::Benchmark benchmark,
                                   const BenchmarkOptions &options = {});

/** The Table 2 topology for a benchmark (before width scaling). */
std::string benchmarkTopologyString(nn::Benchmark benchmark);

} // namespace rapidnn::core

#endif // RAPIDNN_CORE_RAPIDNN_HH
