#include "core/rapidnn.hh"

#include <cmath>

#include "blob/blob.hh"
#include "common/logging.hh"
#include "nn/trainer.hh"
#include "telemetry/telemetry.hh"

namespace rapidnn::core {

RunReport
Rapidnn::measure(composer::ComposeResult compose,
                 const nn::Dataset &validation)
{
    RunReport report;
    report.compose = std::move(compose);
    _model = std::move(report.compose.model);
    report.memoryBytes = _model.memoryBytes();
    // The validation feature shape is the shape the deployment serves
    // at; recording it lets exportBlob precompute conv gather plans
    // and workspace arena sizes into the blob.
    if (_model.canonicalInputShape().empty() && validation.size() > 0)
        _model.setCanonicalInputShape(validation.featureShape());

    _chip = std::make_unique<rna::Chip>(_config.chip);
    _chip->configure(_model);
    // Top-level pipeline span; the per-sample chip_infer spans nest
    // under it when tracing is on.
    RAPIDNN_TELEMETRY_SPAN("evaluate",
                           static_cast<int64_t>(validation.size()));
    report.acceleratorError = _chip->errorRate(validation, report.perf);
    return report;
}

std::unique_ptr<runtime::ServingEngine>
Rapidnn::serve(const runtime::ServingConfig &serving) const
{
    if (_model.layers().empty())
        fatal("Rapidnn::serve() needs a composed model; "
              "call run() or runOneShot() first");
    return std::make_unique<runtime::ServingEngine>(
        _model, _config.chip, serving);
}

void
Rapidnn::exportBlob(const std::string &path) const
{
    if (_model.layers().empty())
        fatal("Rapidnn::exportBlob() needs a composed model; "
              "call run() or runOneShot() first");
    blob::writeBlobFile(_model, path);
}

std::unique_ptr<runtime::ServingEngine>
Rapidnn::serveBlob(const std::string &path,
                   const rna::ChipConfig &chip,
                   const runtime::ServingConfig &serving)
{
    return std::make_unique<runtime::ServingEngine>(
        blob::ModelBlob::open(path), chip, serving);
}

RunReport
Rapidnn::run(nn::Network &net, const nn::Dataset &train,
             const nn::Dataset &validation)
{
    composer::Composer comp(_config.composer);
    composer::ComposeResult result;
    {
        RAPIDNN_TELEMETRY_SPAN("compose");
        result = comp.compose(net, train, validation);
    }
    return measure(std::move(result), validation);
}

RunReport
Rapidnn::runOneShot(nn::Network &net, const nn::Dataset &train,
                    const nn::Dataset &validation)
{
    composer::Composer comp(_config.composer);
    composer::ComposeResult result;
    result.baselineError = nn::Trainer::errorRate(net, validation);
    {
        RAPIDNN_TELEMETRY_SPAN("compose");
        result.model = comp.reinterpret(net, train);
    }
    result.clusteredError = result.model.errorRate(validation);
    result.deltaE = result.clusteredError - result.baselineError;
    return measure(std::move(result), validation);
}

namespace {

/** Table 2 hidden widths, scaled. */
size_t
scaled(size_t width, double scale)
{
    return std::max<size_t>(8, static_cast<size_t>(
        std::lround(static_cast<double>(width) * scale)));
}

} // namespace

std::string
benchmarkTopologyString(nn::Benchmark benchmark)
{
    switch (benchmark) {
      case nn::Benchmark::Mnist:
        return "IN:784, FC:512, FC:512, FC:10";
      case nn::Benchmark::Isolet:
        return "IN:617, FC:512, FC:512, FC:26";
      case nn::Benchmark::Har:
        return "IN:561, FC:512, FC:512, FC:19";
      case nn::Benchmark::Cifar10:
        return "IN:32x32x3, CV:32x3x3, PL:2x2, CV:64x3x3, CV:64x3x3, "
               "FC:512, FC:10";
      case nn::Benchmark::Cifar100:
        return "IN:32x32x3, CV:32x3x3, PL:2x2, CV:64x3x3, CV:64x3x3, "
               "FC:512, FC:100";
      case nn::Benchmark::ImageNet:
        return "VGG-style stand-in (see DESIGN.md)";
    }
    panic("unknown benchmark");
}

BenchmarkModel
buildBenchmarkModel(nn::Benchmark benchmark,
                    const BenchmarkOptions &options)
{
    BenchmarkModel bm{benchmark, nn::Network{}, nn::Dataset{},
                      nn::Dataset{}, 0.0, {}};
    nn::Dataset data =
        nn::makeBenchmarkDataset(benchmark, options.samples);
    auto [train, validation] = data.split(options.holdout);
    bm.train = std::move(train);
    bm.validation = std::move(validation);

    Rng rng(options.seed);
    const double s = options.widthScale;
    nn::Shape inputShape = bm.train.featureShape();

    switch (benchmark) {
      case nn::Benchmark::Mnist:
      case nn::Benchmark::Isolet:
      case nn::Benchmark::Har: {
        const size_t features = inputShape[0];
        bm.network = nn::buildMlp(
            {.inputs = features,
             .hidden = {scaled(512, s), scaled(512, s)},
             .outputs = bm.train.classes(),
             .hiddenAct = nn::ActKind::ReLU,
             .dropout = 0.0},
            rng);
        break;
      }
      case nn::Benchmark::Cifar10:
      case nn::Benchmark::Cifar100:
      case nn::Benchmark::ImageNet: {
        nn::CnnSpec spec;
        spec.channels = inputShape[0];
        spec.height = inputShape[1];
        spec.width = inputShape[2];
        // Table 2: CV:32, PL, CV:64, CV:64, FC:512 (scaled).
        spec.convChannels = {scaled(32, s), scaled(64, s),
                             scaled(64, s)};
        if (benchmark == nn::Benchmark::ImageNet)
            spec.convChannels.push_back(scaled(64, s));  // deeper
        spec.denseWidths = {scaled(512, s)};
        spec.outputs = bm.train.classes();
        bm.network = nn::buildCnn(spec, rng);
        break;
      }
    }

    nn::Trainer trainer({.epochs = options.trainEpochs, .batchSize = 32,
                         .learningRate = 0.05, .momentum = 0.9,
                         .shuffleSeed = options.seed});
    trainer.train(bm.network, bm.train);
    bm.baselineError =
        nn::Trainer::errorRate(bm.network, bm.validation);
    bm.shape = nn::shapeOfNetwork(bm.network, inputShape,
                                  nn::benchmarkName(benchmark));
    return bm;
}

} // namespace rapidnn::core
